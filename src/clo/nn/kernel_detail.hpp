#pragma once
// Internal to the kernel TUs (kernel.cpp / kernel_avx2.cpp /
// kernel_avx512.cpp). The folds here ARE the reduction semantics every
// dispatch target must implement; sharing one definition keeps them from
// drifting apart. Pure adds and compares — nothing here is contractible
// into an FMA.

#include <limits>

namespace clo::nn::kernel::detail {

/// Fixed tree over 8 interleaved partial sums plus the sequential tail
/// (same layout conv1d's forward has used since PR 3).
inline float reduce8(const float lanes[8], float tail) {
  const float s04 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
  const float s26 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
  return (s04 + s26) + tail;
}

/// Fixed fold for 8-lane maxima with the `x > m ? x : m` select. NaN
/// handling does NOT ride on this fold: max_value detects NaN with a
/// separate unordered-compare accumulator and returns canonical_nan(), so
/// the fold itself only ever sees the max-of-non-NaN path. (The AVX-512
/// target deliberately keeps max_value at 8 lanes: folding 16 lanes down
/// would reorder the selects and can flip which signed zero survives a
/// +0.0 / -0.0 tie.)
inline float fold_max8(const float lanes[8]) {
  float m = lanes[0];
  for (int t = 1; t < 8; ++t) m = lanes[t] > m ? lanes[t] : m;
  return m;
}

/// The one NaN every target returns from max_value when any input element
/// is NaN — payload-pinned so "NaN in, NaN out" is still bitwise
/// deterministic across targets and element positions.
inline float canonical_nan() { return std::numeric_limits<float>::quiet_NaN(); }

}  // namespace clo::nn::kernel::detail
