#pragma once
// Minimal dense float tensor with reverse-mode automatic differentiation —
// the training substrate for the surrogate and diffusion models (the paper
// trains small PyTorch models; everything here is CPU float32).
//
// Semantics: Tensor is a cheap shared handle to a node in a dynamically
// built compute graph. Ops (see ops.hpp) allocate fresh output tensors and
// record a backward closure. `backward(root)` runs reverse topological
// accumulation from a scalar root.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clo/util/aligned.hpp"
#include "clo/util/rng.hpp"

namespace clo::nn {

class Tensor;

/// Tensor storage: 64-byte-aligned so the SIMD kernels (kernel.hpp) start
/// every data/grad buffer on a full cache line / zmm vector boundary.
using FloatBuf = util::AlignedFloats;

struct TensorImpl {
  std::vector<int> shape;
  FloatBuf data;
  FloatBuf grad;   ///< same size as data once touched
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;  ///< pushes grad to parents

  std::size_t numel() const { return data.size(); }
  void ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Uninitialized-to-zero tensor of `shape`.
  static Tensor zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor full(std::vector<int> shape, float value,
                     bool requires_grad = false);
  /// Gaussian init scaled by `stddev`.
  static Tensor randn(std::vector<int> shape, clo::Rng& rng, float stddev,
                      bool requires_grad = false);
  static Tensor from_data(std::vector<int> shape, std::vector<float> data,
                          bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const { return impl_->shape; }
  int dim(int i) const { return impl_->shape[i]; }
  int ndim() const { return static_cast<int>(impl_->shape.size()); }
  std::size_t numel() const { return impl_->numel(); }

  FloatBuf& data() { return impl_->data; }
  const FloatBuf& data() const { return impl_->data; }
  FloatBuf& grad() { impl_->ensure_grad(); return impl_->grad; }

  float item() const { return impl_->data.at(0); }

  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool v) { impl_->requires_grad = v; }

  void zero_grad() {
    impl_->grad.assign(impl_->data.size(), 0.0f);
  }

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  std::string shape_str() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Reverse-mode accumulation from a scalar `root` (numel() == 1).
/// Grad buffers of reachable requires_grad tensors are accumulated into
/// (callers zero them between steps via the optimizer).
void backward(const Tensor& root);

/// Detached copy: same data, no graph history.
Tensor detach(const Tensor& t);

/// Whether ops currently record the autograd graph on this thread (true
/// unless a NoGradGuard is alive). Checked by every op in ops.cpp.
bool grad_enabled();

/// RAII inference-mode guard (thread-local, nestable): while alive, ops
/// compute data only — no parents, no backward closures — so pure
/// inference (denoiser evaluations, no-grad objective queries) allocates
/// nothing beyond the output buffers and never retains the graph.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool saved_;
};

/// RAII inference guard: clears requires_grad on the given (parameter)
/// tensors and restores the previous flags on destruction. While frozen,
/// backward() never touches the parameters' grad buffers, which makes
/// concurrent forward/backward passes sharing the same weights safe —
/// every other node of each pass's graph is private to its thread. Input
/// gradients are unaffected bit for bit: the skipped accumulations only
/// ever fed the frozen leaves themselves.
class GradFreeze {
 public:
  explicit GradFreeze(const std::vector<Tensor>& params);
  ~GradFreeze();
  GradFreeze(const GradFreeze&) = delete;
  GradFreeze& operator=(const GradFreeze&) = delete;

 private:
  std::vector<std::shared_ptr<TensorImpl>> impls_;
  std::vector<bool> saved_;
};

}  // namespace clo::nn
