#include "clo/nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "clo/util/fault.hpp"

namespace clo::nn {
namespace {

constexpr char kMagic[6] = {'C', 'L', 'O', 'N', 'N', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

bool save_parameters(const std::vector<Tensor>& params, std::ostream& os) {
  CLO_FAULT_POINT("serialize.write");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, static_cast<std::uint32_t>(params.size()));
  for (const Tensor& p : params) {
    write_pod(os, static_cast<std::uint32_t>(p.shape().size()));
    for (int d : p.shape()) write_pod(os, static_cast<std::int32_t>(d));
    os.write(reinterpret_cast<const char*>(p.data().data()),
             static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  return static_cast<bool>(os);
}

bool save_parameters(const std::vector<Tensor>& params,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  return save_parameters(params, os);
}

bool load_parameters(std::vector<Tensor>& params, std::istream& is) {
  CLO_FAULT_POINT("serialize.read");
  char magic[6];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint32_t count = 0;
  if (!read_pod(is, count) || count != params.size()) return false;
  for (Tensor& p : params) {
    // Read the declared shape into bounded local storage first: a corrupt
    // ndims/dim must be rejected before it sizes any read or allocation.
    std::uint32_t ndims = 0;
    if (!read_pod(is, ndims) || ndims > kMaxTensorDims) return false;
    std::int64_t declared_elems = 1;
    std::vector<std::int32_t> dims(ndims);
    for (auto& d : dims) {
      if (!read_pod(is, d) || d <= 0 || d > kMaxTensorElems) return false;
      declared_elems *= d;
      if (declared_elems > kMaxTensorElems) return false;
    }
    if (ndims != static_cast<std::uint32_t>(p.ndim())) return false;
    for (int i = 0; i < p.ndim(); ++i) {
      if (dims[i] != p.dim(i)) return false;
    }
    is.read(reinterpret_cast<char*>(p.data().data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!is ||
        is.gcount() !=
            static_cast<std::streamsize>(p.numel() * sizeof(float))) {
      return false;
    }
  }
  return true;
}

bool load_parameters(std::vector<Tensor>& params, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  return load_parameters(params, is);
}

bool save_module(Module& module, const std::string& path) {
  return save_parameters(module.parameters(), path);
}

bool load_module(Module& module, const std::string& path) {
  auto params = module.parameters();
  return load_parameters(params, path);
}

}  // namespace clo::nn
