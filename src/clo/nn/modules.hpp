#pragma once
// Neural-network building blocks composed from ops.hpp: dense layers, an
// LSTM, additive attention pooling, and 1-D conv blocks. These are the
// pieces the surrogate models (MTL / LOSTIN / CNN) and the diffusion U-Net
// are assembled from.

#include <memory>
#include <vector>

#include "clo/nn/ops.hpp"
#include "clo/nn/tensor.hpp"

namespace clo::nn {

/// Base class exposing trainable parameters to an optimizer.
class Module {
 public:
  virtual ~Module() = default;
  virtual std::vector<Tensor> parameters() = 0;

  std::size_t num_parameters() {
    std::size_t n = 0;
    for (auto& p : parameters()) n += p.numel();
    return n;
  }
};

/// Fully connected layer y = x W + b  (x: [batch, in]).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, clo::Rng& rng);
  Tensor forward(const Tensor& x);
  std::vector<Tensor> parameters() override { return {weight_, bias_}; }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

/// Two-layer MLP with ReLU.
class Mlp : public Module {
 public:
  Mlp(int in_features, int hidden, int out_features, clo::Rng& rng);
  Tensor forward(const Tensor& x);
  std::vector<Tensor> parameters() override;

 private:
  Linear fc1_, fc2_;
};

/// Single-layer LSTM unrolled over a sequence of [batch, in] tensors;
/// returns per-step hidden states [batch, hidden].
class Lstm : public Module {
 public:
  Lstm(int in_features, int hidden, clo::Rng& rng);
  std::vector<Tensor> forward(const std::vector<Tensor>& steps);
  int hidden_size() const { return hidden_; }
  std::vector<Tensor> parameters() override { return {wx_, wh_, bias_}; }

 private:
  int hidden_;
  Tensor wx_;    // [in, 4h]
  Tensor wh_;    // [h, 4h]
  Tensor bias_;  // [4h]
};

/// Additive attention pooling over step outputs: softmax(v . tanh(W h_t))
/// weighted sum. A light stand-in for the paper's 2-layer attention heads.
class AttentionPool : public Module {
 public:
  AttentionPool(int features, int attn_dim, clo::Rng& rng);
  /// steps: T tensors of [batch, features]; returns [batch, features].
  Tensor forward(const std::vector<Tensor>& steps);
  std::vector<Tensor> parameters() override { return {w_, v_, b_}; }

 private:
  Tensor w_;  // [features, attn_dim]
  Tensor v_;  // [attn_dim, 1]
  Tensor b_;  // [attn_dim]
};

/// Conv1d layer with weights (same padding, odd kernel).
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int in_channels, int out_channels, int kernel, clo::Rng& rng);
  Tensor forward(const Tensor& x);
  std::vector<Tensor> parameters() override { return {weight_, bias_}; }

 private:
  Tensor weight_;  // [Co, Ci, K]
  Tensor bias_;    // [Co]
};

/// Sinusoidal timestep embedding (DDPM-style), not trainable.
Tensor timestep_embedding(const std::vector<int>& t, int dim);

}  // namespace clo::nn
