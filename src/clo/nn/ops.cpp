#include "clo/nn/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "clo/nn/kernel.hpp"
#include "clo/util/thread_pool.hpp"

namespace clo::nn {
namespace {

Tensor make_result(std::vector<int> shape,
                   std::vector<std::shared_ptr<TensorImpl>> parents,
                   std::function<void(TensorImpl&)> backward_fn) {
  Tensor out = Tensor::zeros(std::move(shape));
  bool any_grad = false;
  for (const auto& p : parents) any_grad = any_grad || p->requires_grad;
  any_grad = any_grad && grad_enabled();
  out.impl()->requires_grad = any_grad;
  if (any_grad) {
    out.impl()->parents = std::move(parents);
    out.impl()->backward_fn = std::move(backward_fn);
  }
  return out;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}

/// Whether backward should write into this node's grad buffer: tracked
/// interior nodes and requires_grad leaves only. Frozen leaves (see
/// GradFreeze) and plain constants are skipped — they would never be read,
/// and skipping them is what makes concurrent backward passes over shared
/// (frozen) weights race-free.
bool wants_grad(const TensorImpl& p) {
  return p.requires_grad || p.backward_fn != nullptr;
}

void accumulate(const std::shared_ptr<TensorImpl>& p,
                const FloatBuf& grad_piece) {
  if (!wants_grad(*p)) return;
  p->ensure_grad();
  kernel::acc(p->grad.data(), grad_piece.data(), grad_piece.size());
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  auto pa = a.impl();
  auto pb = b.impl();
  Tensor out = make_result(a.shape(), {pa, pb}, [pa, pb](TensorImpl& self) {
    accumulate(pa, self.grad);
    accumulate(pb, self.grad);
  });
  kernel::add(out.data().data(), pa->data.data(), pb->data.data(),
              out.numel());
  return out;
}

Tensor add_bias(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 1 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("add_bias: need [r,c] + [c]");
  }
  auto pa = a.impl();
  auto pb = b.impl();
  const int rows = a.dim(0), cols = a.dim(1);
  Tensor out = make_result(a.shape(), {pa, pb},
                           [pa, pb, rows, cols](TensorImpl& self) {
    accumulate(pa, self.grad);
    if (!wants_grad(*pb)) return;
    pb->ensure_grad();
    for (int r = 0; r < rows; ++r) {
      kernel::acc(pb->grad.data(),
                  self.grad.data() + static_cast<std::size_t>(r) * cols, cols);
    }
  });
  for (int r = 0; r < rows; ++r) {
    kernel::add(out.data().data() + static_cast<std::size_t>(r) * cols,
                pa->data.data() + static_cast<std::size_t>(r) * cols,
                pb->data.data(), cols);
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  auto pa = a.impl();
  auto pb = b.impl();
  Tensor out = make_result(a.shape(), {pa, pb}, [pa, pb](TensorImpl& self) {
    accumulate(pa, self.grad);
    if (!wants_grad(*pb)) return;
    pb->ensure_grad();
    kernel::axpy(pb->grad.data(), -1.0f, self.grad.data(), self.grad.size());
  });
  kernel::sub(out.data().data(), pa->data.data(), pb->data.data(),
              out.numel());
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  auto pa = a.impl();
  auto pb = b.impl();
  Tensor out = make_result(a.shape(), {pa, pb}, [pa, pb](TensorImpl& self) {
    const bool ga = wants_grad(*pa), gb = wants_grad(*pb);
    if (ga) pa->ensure_grad();
    if (gb) pb->ensure_grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      if (ga) pa->grad[i] += self.grad[i] * pb->data[i];
      if (gb) pb->grad[i] += self.grad[i] * pa->data[i];
    }
  });
  kernel::mul(out.data().data(), pa->data.data(), pb->data.data(),
              out.numel());
  return out;
}

Tensor scale(const Tensor& a, float s) {
  auto pa = a.impl();
  Tensor out = make_result(a.shape(), {pa}, [pa, s](TensorImpl& self) {
    if (!wants_grad(*pa)) return;
    pa->ensure_grad();
    kernel::axpy(pa->grad.data(), s, self.grad.data(), self.grad.size());
  });
  kernel::scale(out.data().data(), pa->data.data(), s, out.numel());
  return out;
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

namespace {

template <typename Fwd, typename Dfn>
Tensor unary_op(const Tensor& a, Fwd fwd, Dfn dydx_from_y) {
  auto pa = a.impl();
  Tensor out = Tensor::zeros(a.shape());
  for (std::size_t i = 0; i < out.numel(); ++i) {
    out.data()[i] = fwd(pa->data[i]);
  }
  auto po = out.impl();
  bool needs =
      (pa->requires_grad || pa->backward_fn != nullptr) && grad_enabled();
  // Mirror make_result wiring but capture the output data for the backward.
  if (needs) {
    out.impl()->requires_grad = true;
    out.impl()->parents = {pa};
    FloatBuf y = out.data();
    out.impl()->backward_fn = [pa, y = std::move(y),
                               dydx_from_y](TensorImpl& self) {
      pa->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        pa->grad[i] += self.grad[i] * dydx_from_y(y[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor relu(const Tensor& a) {
  return unary_op(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float y) { return y > 0 ? 1.0f : 0.0f; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y) { return y * (1.0f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); },
      [](float y) { return 1.0f - y * y; });
}

Tensor silu(const Tensor& a) {
  // silu(x) = x * sigmoid(x); derivative needs x, so capture input.
  auto pa = a.impl();
  Tensor out = Tensor::zeros(a.shape());
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const float x = pa->data[i];
    out.data()[i] = x / (1.0f + std::exp(-x));
  }
  if ((pa->requires_grad || pa->backward_fn) && grad_enabled()) {
    out.impl()->requires_grad = true;
    out.impl()->parents = {pa};
    out.impl()->backward_fn = [pa](TensorImpl& self) {
      pa->ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        const float x = pa->data[i];
        const float s = 1.0f / (1.0f + std::exp(-x));
        pa->grad[i] += self.grad[i] * (s + x * s * (1.0f - s));
      }
    };
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul: need 2-D tensors");
  }
  const int m = a.dim(0);
  const int k = a.dim(1);
  const int n = transpose_b ? b.dim(0) : b.dim(1);
  const int bk = transpose_b ? b.dim(1) : b.dim(0);
  if (k != bk) {
    throw std::invalid_argument("matmul: inner dims mismatch " +
                                a.shape_str() + " x " + b.shape_str());
  }
  auto pa = a.impl();
  auto pb = b.impl();
  Tensor out = make_result(
      {m, n}, {pa, pb}, [pa, pb, m, k, n, transpose_b](TensorImpl& self) {
        const bool ga = wants_grad(*pa), gb = wants_grad(*pb);
        if (ga) pa->ensure_grad();
        if (gb) pb->ensure_grad();
        // No zero-skip fast path anywhere below: 0 * Inf and 0 * NaN must
        // produce NaN so a poisoned parameter always surfaces as a
        // non-finite loss/grad (the PR 4 rollback guards depend on it).
        if (ga) {
          // dA = dY · Bᵀ (or dY · B when b was transposed).
          kernel::matmul(self.grad.data(), pb->data.data(), pa->grad.data(),
                         m, n, k, !transpose_b);
        }
        if (gb) {
          // Both transpose cases are one Aᵀ·B product accumulating over
          // the shared row index i ascending — exactly the axpy loop
          // order this used before matmul_ta existed, now vectorized and
          // tiled over the kernel thread pool.
          if (transpose_b) {
            // dB[j,:] += gy[i,j] * A[i,:]  ⇒  dB = dYᵀ · A
            kernel::matmul_ta(self.grad.data(), pa->data.data(),
                              pb->grad.data(), m, n, k);
          } else {
            // dB[l,:] += A[i,l] * dY[i,:]  ⇒  dB = Aᵀ · dY
            kernel::matmul_ta(pa->data.data(), self.grad.data(),
                              pb->grad.data(), m, k, n);
          }
        }
      });
  kernel::matmul(pa->data.data(), pb->data.data(), out.data().data(), m, k, n,
                 transpose_b);
  return out;
}

Tensor sum_all(const Tensor& a) {
  auto pa = a.impl();
  Tensor out = make_result({1}, {pa}, [pa](TensorImpl& self) {
    pa->ensure_grad();
    for (auto& g : pa->grad) g += self.grad[0];
  });
  out.data()[0] = kernel::sum(pa->data.data(), pa->data.size());
  return out;
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor mean_rows(const Tensor& a) {
  if (a.ndim() != 2) throw std::invalid_argument("mean_rows: need 2-D");
  const int rows = a.dim(0), cols = a.dim(1);
  auto pa = a.impl();
  Tensor out = make_result({1, cols}, {pa}, [pa, rows, cols](TensorImpl& self) {
    pa->ensure_grad();
    const float inv = 1.0f / static_cast<float>(rows);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        pa->grad[r * cols + c] += self.grad[c] * inv;
      }
    }
  });
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) out.data()[c] += pa->data[r * cols + c];
  }
  for (int c = 0; c < cols; ++c) out.data()[c] /= static_cast<float>(rows);
  return out;
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  auto pa = pred.impl();
  auto pb = target.impl();
  const float inv = 1.0f / static_cast<float>(pred.numel());
  Tensor out = make_result({1}, {pa, pb}, [pa, pb, inv](TensorImpl& self) {
    const bool ga = wants_grad(*pa), gb = wants_grad(*pb);
    if (ga) pa->ensure_grad();
    if (gb) pb->ensure_grad();
    const float g = self.grad[0];
    for (std::size_t i = 0; i < pa->data.size(); ++i) {
      const float d = 2.0f * (pa->data[i] - pb->data[i]) * inv * g;
      if (ga) pa->grad[i] += d;
      if (gb) pb->grad[i] -= d;
    }
  });
  out.data()[0] =
      kernel::sqdist(pa->data.data(), pb->data.data(), pred.numel()) * inv;
  return out;
}

Tensor reshape(const Tensor& a, std::vector<int> shape) {
  std::size_t n = 1;
  for (int d : shape) n *= static_cast<std::size_t>(d);
  if (n != a.numel()) throw std::invalid_argument("reshape: numel mismatch");
  auto pa = a.impl();
  Tensor out = make_result(std::move(shape), {pa}, [pa](TensorImpl& self) {
    accumulate(pa, self.grad);
  });
  out.data() = pa->data;
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 2 || b.ndim() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("concat_cols: need [r,ca],[r,cb]");
  }
  const int rows = a.dim(0), ca = a.dim(1), cb = b.dim(1);
  auto pa = a.impl();
  auto pb = b.impl();
  Tensor out = make_result({rows, ca + cb}, {pa, pb},
                           [pa, pb, rows, ca, cb](TensorImpl& self) {
    const bool ga = wants_grad(*pa), gb = wants_grad(*pb);
    if (ga) pa->ensure_grad();
    if (gb) pb->ensure_grad();
    for (int r = 0; r < rows; ++r) {
      if (ga) {
        for (int c = 0; c < ca; ++c) {
          pa->grad[r * ca + c] += self.grad[r * (ca + cb) + c];
        }
      }
      if (gb) {
        for (int c = 0; c < cb; ++c) {
          pb->grad[r * cb + c] += self.grad[r * (ca + cb) + ca + c];
        }
      }
    }
  });
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < ca; ++c) {
      out.data()[r * (ca + cb) + c] = pa->data[r * ca + c];
    }
    for (int c = 0; c < cb; ++c) {
      out.data()[r * (ca + cb) + ca + c] = pb->data[r * cb + c];
    }
  }
  return out;
}

Tensor slice_cols(const Tensor& a, int begin, int end) {
  if (a.ndim() != 2 || begin < 0 || end > a.dim(1) || begin >= end) {
    throw std::invalid_argument("slice_cols: bad range");
  }
  const int rows = a.dim(0), cols = a.dim(1), w = end - begin;
  auto pa = a.impl();
  Tensor out = make_result({rows, w}, {pa},
                           [pa, rows, cols, begin, w](TensorImpl& self) {
    pa->ensure_grad();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < w; ++c) {
        pa->grad[r * cols + begin + c] += self.grad[r * w + c];
      }
    }
  });
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < w; ++c) {
      out.data()[r * w + c] = pa->data[r * cols + begin + c];
    }
  }
  return out;
}

Tensor gather_rows(const Tensor& a, const std::vector<int>& rows) {
  if (a.ndim() != 2) throw std::invalid_argument("gather_rows: need 2-D");
  const int cols = a.dim(1);
  auto pa = a.impl();
  auto idx = rows;  // captured copy
  Tensor out = make_result({static_cast<int>(rows.size()), cols}, {pa},
                           [pa, idx, cols](TensorImpl& self) {
    pa->ensure_grad();
    for (std::size_t r = 0; r < idx.size(); ++r) {
      for (int c = 0; c < cols; ++c) {
        pa->grad[static_cast<std::size_t>(idx[r]) * cols + c] +=
            self.grad[r * cols + c];
      }
    }
  });
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < cols; ++c) {
      out.data()[r * cols + c] =
          pa->data[static_cast<std::size_t>(rows[r]) * cols + c];
    }
  }
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  if (a.ndim() != 2) throw std::invalid_argument("softmax_rows: need 2-D");
  const int rows = a.dim(0), cols = a.dim(1);
  auto pa = a.impl();
  Tensor out = Tensor::zeros(a.shape());
  for (int r = 0; r < rows; ++r) {
    float* orow = out.data().data() + static_cast<std::size_t>(r) * cols;
    const float* arow = pa->data.data() + static_cast<std::size_t>(r) * cols;
    const float mx = kernel::max_value(arow, cols);
    // exp stays scalar on both dispatch targets (libm transcendentals have
    // no vector twin with identical rounding); max and the normalize go
    // through the kernels.
    float z = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float e = std::exp(arow[c] - mx);
      orow[c] = e;
      z += e;
    }
    kernel::div_inplace(orow, z, cols);
  }
  if ((pa->requires_grad || pa->backward_fn) && grad_enabled()) {
    out.impl()->requires_grad = true;
    out.impl()->parents = {pa};
    FloatBuf y = out.data();
    out.impl()->backward_fn = [pa, y = std::move(y), rows,
                               cols](TensorImpl& self) {
      pa->ensure_grad();
      for (int r = 0; r < rows; ++r) {
        const float dot =
            kernel::dot(self.grad.data() + static_cast<std::size_t>(r) * cols,
                        y.data() + static_cast<std::size_t>(r) * cols, cols);
        for (int c = 0; c < cols; ++c) {
          pa->grad[r * cols + c] +=
              y[r * cols + c] * (self.grad[r * cols + c] - dot);
        }
      }
    };
  }
  return out;
}

Tensor layer_norm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                  float eps) {
  if (a.ndim() != 2 || gain.ndim() != 1 || bias.ndim() != 1 ||
      gain.dim(0) != a.dim(1) || bias.dim(0) != a.dim(1)) {
    throw std::invalid_argument("layer_norm: need [r,c], [c], [c]");
  }
  const int rows = a.dim(0), cols = a.dim(1);
  auto pa = a.impl();
  auto pg = gain.impl();
  auto pb = bias.impl();
  Tensor out = Tensor::zeros(a.shape());
  std::vector<float> xhat(a.numel());
  std::vector<float> inv_std(rows);
  for (int r = 0; r < rows; ++r) {
    float mean = 0.0f;
    for (int c = 0; c < cols; ++c) mean += pa->data[r * cols + c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float d = pa->data[r * cols + c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    inv_std[r] = 1.0f / std::sqrt(var + eps);
    for (int c = 0; c < cols; ++c) {
      const float xh = (pa->data[r * cols + c] - mean) * inv_std[r];
      xhat[r * cols + c] = xh;
      out.data()[r * cols + c] = xh * pg->data[c] + pb->data[c];
    }
  }
  const bool needs = (pa->requires_grad || pa->backward_fn ||
                      pg->requires_grad || pb->requires_grad) &&
                     grad_enabled();
  if (needs) {
    out.impl()->requires_grad = true;
    out.impl()->parents = {pa, pg, pb};
    out.impl()->backward_fn = [pa, pg, pb, xhat = std::move(xhat),
                               inv_std = std::move(inv_std), rows,
                               cols](TensorImpl& self) {
      const bool ga = wants_grad(*pa);
      const bool gg = wants_grad(*pg);
      const bool gb = wants_grad(*pb);
      if (ga) pa->ensure_grad();
      if (gg) pg->ensure_grad();
      if (gb) pb->ensure_grad();
      for (int r = 0; r < rows; ++r) {
        float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
        for (int c = 0; c < cols; ++c) {
          const float dy = self.grad[r * cols + c] * pg->data[c];
          sum_dy += dy;
          sum_dy_xhat += dy * xhat[r * cols + c];
          if (gg) pg->grad[c] += self.grad[r * cols + c] * xhat[r * cols + c];
          if (gb) pb->grad[c] += self.grad[r * cols + c];
        }
        const float invn = 1.0f / static_cast<float>(cols);
        if (!ga) continue;
        for (int c = 0; c < cols; ++c) {
          const float dy = self.grad[r * cols + c] * pg->data[c];
          pa->grad[r * cols + c] +=
              inv_std[r] *
              (dy - invn * sum_dy - xhat[r * cols + c] * invn * sum_dy_xhat);
        }
      }
    };
  }
  return out;
}

// ---- conv1d stack -----------------------------------------------------------

Tensor conv1d(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  if (x.ndim() != 3 || weight.ndim() != 3 || bias.ndim() != 1) {
    throw std::invalid_argument("conv1d: need [B,C,L], [Co,Ci,K], [Co]");
  }
  const int B = x.dim(0), Ci = x.dim(1), L = x.dim(2);
  const int Co = weight.dim(0), K = weight.dim(2);
  if (weight.dim(1) != Ci || bias.dim(0) != Co || K % 2 == 0) {
    throw std::invalid_argument("conv1d: shape mismatch");
  }
  const int pad = K / 2;
  auto px = x.impl();
  auto pw = weight.impl();
  auto pb = bias.impl();
  Tensor out = make_result(
      {B, Co, L}, {px, pw, pb},
      [px, pw, pb, B, Ci, L, Co, K, pad](TensorImpl& self) {
        const bool gx = wants_grad(*px);
        const bool gw = wants_grad(*pw);
        const bool gb = wants_grad(*pb);
        if (gx) px->ensure_grad();
        if (gw) pw->ensure_grad();
        if (gb) pb->ensure_grad();
        if (!gx && !gw && !gb) return;
        // Shift-wise accumulation mirrors the forward pass: each (ci, k)
        // tap touches one contiguous slice, so the inner loops are
        // branch-free and unit-stride instead of the per-element gather
        // with bounds checks.
        for (int b = 0; b < B; ++b) {
          for (int co = 0; co < Co; ++co) {
            const float* gy = self.grad.data() +
                              (static_cast<std::size_t>(b) * Co + co) * L;
            if (gb) pb->grad[co] += kernel::sum(gy, L);
            if (!gx && !gw) continue;
            for (int ci = 0; ci < Ci; ++ci) {
              const float* xi =
                  px->data.data() + (static_cast<std::size_t>(b) * Ci + ci) * L;
              float* dxi = gx ? px->grad.data() +
                                    (static_cast<std::size_t>(b) * Ci + ci) * L
                              : nullptr;
              for (int k = 0; k < K; ++k) {
                const int shift = k - pad;
                const int lo = shift < 0 ? -shift : 0;
                const int hi = shift > 0 ? L - shift : L;
                if (gw) {
                  pw->grad[(co * Ci + ci) * K + k] +=
                      kernel::dot(gy + lo, xi + lo + shift, hi - lo);
                }
                if (gx) {
                  const float w = pw->data[(co * Ci + ci) * K + k];
                  kernel::axpy(dxi + lo + shift, w, gy + lo, hi - lo);
                }
              }
            }
          }
        }
      });
  // im2col + one transpose_b matmul per batch element: gathering each
  // output position's padded patch once turns every output element into a
  // dense dot over Ci*K contiguous floats, shared by all Co filters.
  // kernel::matmul's transposed form computes exactly the 8-lane-tree dot
  // this op used since PR 3 (bias first, then one full tree-reduced dot
  // added to it), so values are unchanged — and identical on every
  // dispatch target. Batch elements are independent (private patch
  // buffer, disjoint output slab), so they fan out over the kernel thread
  // pool; per-element bytes cannot depend on which worker ran them. The
  // per-batch matmuls then run serially inside their worker (nested
  // kernels degrade to serial by design).
  const int CK = Ci * K;
  util::parallel_tiles(kernel::thread_pool(), static_cast<std::size_t>(B),
                       [&](std::size_t bi) {
    const int b = static_cast<int>(bi);
    std::vector<float> patch(static_cast<std::size_t>(L) * CK);
    for (int l = 0; l < L; ++l) {
      float* row = patch.data() + static_cast<std::size_t>(l) * CK;
      for (int ci = 0; ci < Ci; ++ci) {
        const float* xi =
            px->data.data() + (static_cast<std::size_t>(b) * Ci + ci) * L;
        for (int k = 0; k < K; ++k) {
          const int li = l + k - pad;
          row[ci * K + k] = (li < 0 || li >= L) ? 0.0f : xi[li];
        }
      }
    }
    float* ob = out.data().data() + static_cast<std::size_t>(b) * Co * L;
    for (int co = 0; co < Co; ++co) {
      std::fill(ob + static_cast<std::size_t>(co) * L,
                ob + static_cast<std::size_t>(co + 1) * L, pb->data[co]);
    }
    kernel::matmul(pw->data.data(), patch.data(), ob, Co, CK, L,
                   /*transpose_b=*/true);
  });
  return out;
}

Tensor avg_pool1d(const Tensor& x) {
  if (x.ndim() != 3 || x.dim(2) % 2 != 0) {
    throw std::invalid_argument("avg_pool1d: need [B,C,even L]");
  }
  const int B = x.dim(0), C = x.dim(1), L = x.dim(2), Lo = L / 2;
  auto px = x.impl();
  Tensor out = make_result({B, C, Lo}, {px}, [px, B, C, L, Lo](TensorImpl& self) {
    px->ensure_grad();
    for (int b = 0; b < B; ++b) {
      for (int c = 0; c < C; ++c) {
        for (int l = 0; l < Lo; ++l) {
          const float g = 0.5f * self.grad[(b * C + c) * Lo + l];
          px->grad[(b * C + c) * L + 2 * l] += g;
          px->grad[(b * C + c) * L + 2 * l + 1] += g;
        }
      }
    }
  });
  for (int b = 0; b < B; ++b) {
    for (int c = 0; c < C; ++c) {
      for (int l = 0; l < Lo; ++l) {
        out.data()[(b * C + c) * Lo + l] =
            0.5f * (px->data[(b * C + c) * L + 2 * l] +
                    px->data[(b * C + c) * L + 2 * l + 1]);
      }
    }
  }
  return out;
}

Tensor upsample1d(const Tensor& x) {
  if (x.ndim() != 3) throw std::invalid_argument("upsample1d: need [B,C,L]");
  const int B = x.dim(0), C = x.dim(1), L = x.dim(2), Lo = L * 2;
  auto px = x.impl();
  Tensor out = make_result({B, C, Lo}, {px}, [px, B, C, L, Lo](TensorImpl& self) {
    px->ensure_grad();
    for (int b = 0; b < B; ++b) {
      for (int c = 0; c < C; ++c) {
        for (int l = 0; l < L; ++l) {
          px->grad[(b * C + c) * L + l] +=
              self.grad[(b * C + c) * Lo + 2 * l] +
              self.grad[(b * C + c) * Lo + 2 * l + 1];
        }
      }
    }
  });
  for (int b = 0; b < B; ++b) {
    for (int c = 0; c < C; ++c) {
      for (int l = 0; l < L; ++l) {
        const float v = px->data[(b * C + c) * L + l];
        out.data()[(b * C + c) * Lo + 2 * l] = v;
        out.data()[(b * C + c) * Lo + 2 * l + 1] = v;
      }
    }
  }
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  if (a.ndim() != 3 || b.ndim() != 3 || a.dim(0) != b.dim(0) ||
      a.dim(2) != b.dim(2)) {
    throw std::invalid_argument("concat_channels: shape mismatch");
  }
  const int B = a.dim(0), Ca = a.dim(1), Cb = b.dim(1), L = a.dim(2);
  auto pa = a.impl();
  auto pb = b.impl();
  Tensor out = make_result({B, Ca + Cb, L}, {pa, pb},
                           [pa, pb, B, Ca, Cb, L](TensorImpl& self) {
    const bool ga = wants_grad(*pa), gb = wants_grad(*pb);
    if (ga) pa->ensure_grad();
    if (gb) pb->ensure_grad();
    for (int bt = 0; bt < B; ++bt) {
      if (ga) {
        for (int c = 0; c < Ca; ++c) {
          for (int l = 0; l < L; ++l) {
            pa->grad[(bt * Ca + c) * L + l] +=
                self.grad[(bt * (Ca + Cb) + c) * L + l];
          }
        }
      }
      if (gb) {
        for (int c = 0; c < Cb; ++c) {
          for (int l = 0; l < L; ++l) {
            pb->grad[(bt * Cb + c) * L + l] +=
                self.grad[(bt * (Ca + Cb) + Ca + c) * L + l];
          }
        }
      }
    }
  });
  for (int bt = 0; bt < B; ++bt) {
    for (int c = 0; c < Ca; ++c) {
      for (int l = 0; l < L; ++l) {
        out.data()[(bt * (Ca + Cb) + c) * L + l] = pa->data[(bt * Ca + c) * L + l];
      }
    }
    for (int c = 0; c < Cb; ++c) {
      for (int l = 0; l < L; ++l) {
        out.data()[(bt * (Ca + Cb) + Ca + c) * L + l] =
            pb->data[(bt * Cb + c) * L + l];
      }
    }
  }
  return out;
}

Tensor add_channel_bias(const Tensor& x, const Tensor& b) {
  if (x.ndim() != 3) throw std::invalid_argument("add_channel_bias: [B,C,L]");
  const int B = x.dim(0), C = x.dim(1), L = x.dim(2);
  const bool batched = b.ndim() == 2;
  if ((batched && (b.dim(0) != B || b.dim(1) != C)) ||
      (!batched && b.dim(0) != C)) {
    throw std::invalid_argument("add_channel_bias: bias shape");
  }
  auto px = x.impl();
  auto pb = b.impl();
  Tensor out = make_result({B, C, L}, {px, pb},
                           [px, pb, B, C, L, batched](TensorImpl& self) {
    const bool gx = wants_grad(*px), gb = wants_grad(*pb);
    if (gx) px->ensure_grad();
    if (gb) pb->ensure_grad();
    for (int bt = 0; bt < B; ++bt) {
      for (int c = 0; c < C; ++c) {
        float s = 0.0f;
        for (int l = 0; l < L; ++l) {
          const float g = self.grad[(bt * C + c) * L + l];
          if (gx) px->grad[(bt * C + c) * L + l] += g;
          s += g;
        }
        if (gb) pb->grad[batched ? bt * C + c : c] += s;
      }
    }
  });
  for (int bt = 0; bt < B; ++bt) {
    for (int c = 0; c < C; ++c) {
      const float bias = pb->data[batched ? bt * C + c : c];
      for (int l = 0; l < L; ++l) {
        out.data()[(bt * C + c) * L + l] = px->data[(bt * C + c) * L + l] + bias;
      }
    }
  }
  return out;
}

}  // namespace clo::nn
