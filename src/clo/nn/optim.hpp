#pragma once
// Optimizers. Adam is what the paper's models train with.

#include <vector>

#include "clo/nn/tensor.hpp"

namespace clo::nn {

class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, float lr = 1e-3f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  /// Apply one update from accumulated grads, then zero them.
  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<Tensor> params_;
  std::vector<FloatBuf> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
};

class Sgd {
 public:
  explicit Sgd(std::vector<Tensor> params, float lr = 1e-2f,
               float momentum = 0.0f);
  void step();
  void zero_grad();

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> velocity_;
  float lr_, momentum_;
};

}  // namespace clo::nn
