#pragma once
// Differentiable operations over Tensor. Shapes follow simple conventions:
//  * 2-D [rows, cols] for dense layers,
//  * 3-D [batch, channels, length] for the 1-D U-Net convolutions.
// Broadcasting is deliberately limited to the cases the models need:
// adding a [cols] bias to [rows, cols], and scalar scaling.

#include "clo/nn/tensor.hpp"

namespace clo::nn {

// ---- Elementwise ----------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);        ///< same shape
Tensor add_bias(const Tensor& a, const Tensor& b);   ///< [r,c] + [c]
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);        ///< same shape
Tensor scale(const Tensor& a, float s);
Tensor neg(const Tensor& a);

Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor silu(const Tensor& a);

// ---- Linear algebra ---------------------------------------------------------
/// [m,k] x [k,n] -> [m,n]; transpose_b treats b as [n,k].
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_b = false);

// ---- Reductions -------------------------------------------------------------
Tensor sum_all(const Tensor& a);
Tensor mean_all(const Tensor& a);
/// Mean over rows of [r,c] -> [1,c].
Tensor mean_rows(const Tensor& a);
/// Mean squared error between same-shaped tensors -> scalar.
Tensor mse_loss(const Tensor& pred, const Tensor& target);

// ---- Shape ops ---------------------------------------------------------------
Tensor reshape(const Tensor& a, std::vector<int> shape);
/// Concatenate 2-D tensors along the last dim.
Tensor concat_cols(const Tensor& a, const Tensor& b);
/// Columns [begin, end) of a 2-D tensor.
Tensor slice_cols(const Tensor& a, int begin, int end);
/// Select rows of a 2-D tensor by index (gather); backward scatter-adds.
/// Indices may repeat.
Tensor gather_rows(const Tensor& a, const std::vector<int>& rows);

// ---- Softmax / normalization --------------------------------------------------
/// Softmax over the last dim of a 2-D tensor.
Tensor softmax_rows(const Tensor& a);
/// Layer normalization over the last dim of [r,c] with gain/bias [c].
Tensor layer_norm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                  float eps = 1e-5f);

// ---- 1-D convolution stack (shapes [batch, channels, length]) -----------------
/// weight [C_out, C_in, K] (K odd, same padding), bias [C_out].
Tensor conv1d(const Tensor& x, const Tensor& weight, const Tensor& bias);
/// Average pooling by 2 (length must be even).
Tensor avg_pool1d(const Tensor& x);
/// Nearest-neighbor upsample by 2.
Tensor upsample1d(const Tensor& x);
/// Concatenate along the channel dim.
Tensor concat_channels(const Tensor& a, const Tensor& b);
/// Add a [batch, channels] (or [channels]) bias across every position.
Tensor add_channel_bias(const Tensor& x, const Tensor& b);

}  // namespace clo::nn
