#include "clo/shell/shell.hpp"

#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <iostream>

#include "clo/aig/io.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/nn/kernel.hpp"
#include "clo/opt/transform.hpp"
#include "clo/sat/cec.hpp"
#include "clo/serve/server.hpp"
#include "clo/techmap/tech_map.hpp"
#include "clo/util/exporter.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/rng.hpp"

namespace clo::shell {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::stringstream ss(line);
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

struct Shell::Command {
  std::string name;
  std::string help;
  /// Returns false to quit the shell; throws on errors.
  std::function<bool(Shell&, const std::vector<std::string>&, std::ostream&)>
      run;
};

Shell::Shell() : library_(techmap::CellLibrary::asap7()) {
  register_commands();
}

Shell::~Shell() {
  // A still-running in-shell daemon is torn down before the telemetry
  // artifacts so its counters are included in them.
  if (serve_server_ != nullptr) serve_server_->stop();
  // Stop the exporter first so its final JSONL record captures the
  // complete run before the summary artifacts below are written.
  if (exporter_ != nullptr) exporter_->stop();
  if (!trace_path_.empty()) {
    if (obs::write_trace_file(trace_path_)) {
      std::cerr << "wrote trace to " << trace_path_ << "\n";
    } else {
      std::cerr << "error: cannot write trace to " << trace_path_ << "\n";
    }
  }
  if (!profile_path_.empty()) {
    if (obs::write_json_file(profile_path_, obs::build_profile().to_json())) {
      std::cerr << "wrote profile to " << profile_path_ << "\n";
    } else {
      std::cerr << "error: cannot write profile to " << profile_path_ << "\n";
    }
  }
  if (print_metrics_) {
    std::cerr << obs::Registry::instance().snapshot().format_table();
  }
}

void Shell::set_simd(bool on) { nn::kernel::set_simd_enabled(on); }

bool Shell::simd() const { return nn::kernel::simd_enabled(); }

bool Shell::set_kernel_target(const std::string& name) {
  nn::kernel::Target t;
  if (!nn::kernel::parse_target(name.c_str(), &t)) return false;
  const nn::kernel::Target actual = nn::kernel::set_target(t);
  if (actual != t && name != "auto") {
    std::cerr << "note: kernel target " << name
              << " not supported on this host; using "
              << nn::kernel::target_name(actual) << "\n";
  }
  return true;
}

void Shell::set_trace_path(std::string path) {
  trace_path_ = std::move(path);
  obs::set_enabled(true);
}

void Shell::set_report_path(std::string path) {
  report_path_ = std::move(path);
  obs::set_enabled(true);
}

void Shell::set_print_metrics(bool on) {
  print_metrics_ = on;
  if (on) obs::set_enabled(true);
}

void Shell::set_metrics_out(std::string path) {
  metrics_out_ = std::move(path);
  obs::set_enabled(true);
}

void Shell::set_metrics_port(int port) {
  metrics_port_ = port;
  obs::set_enabled(true);
}

void Shell::set_profile_path(std::string path) {
  profile_path_ = std::move(path);
  obs::set_enabled(true);
}

void Shell::maybe_start_exporter() {
  if (exporter_attempted_) return;
  exporter_attempted_ = true;
  if (metrics_out_.empty() && metrics_port_ < 0) return;
  util::ExporterOptions options;
  options.metrics_path = metrics_out_;
  options.interval_ms = metrics_interval_ms_;
  options.port = metrics_port_;
  exporter_ = std::make_unique<util::Exporter>(std::move(options));
  if (!exporter_->start()) exporter_.reset();
}

aig::Aig& Shell::need_design() {
  if (!design_) {
    throw std::runtime_error("no design loaded (use `read` or `gen`)");
  }
  return *design_;
}

void Shell::register_commands() {
  auto stats_line = [](const aig::Aig& g) {
    std::ostringstream os;
    os << g.name() << ": i/o = " << g.num_pis() << "/" << g.num_pos()
       << "  and = " << g.num_ands() << "  lev = " << g.depth();
    return os.str();
  };

  commands_.push_back({"help", "help — list commands",
                       [](Shell& sh, const auto&, std::ostream& out) {
                         for (const auto& c : sh.commands_) {
                           out << "  " << c.help << "\n";
                         }
                         return true;
                       }});
  commands_.push_back(
      {"gen", "gen <benchmark> — build a named benchmark circuit",
       [stats_line](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() != 2) throw std::runtime_error("usage: gen <name>");
         sh.design_ = circuits::make_benchmark(args[1]);
         out << stats_line(*sh.design_) << "\n";
         return true;
       }});
  commands_.push_back(
      {"list", "list — list available benchmark circuits",
       [](Shell&, const auto&, std::ostream& out) {
         for (const auto& info : circuits::benchmark_catalog()) {
           out << "  " << info.name << " (" << info.suite << "): "
               << info.description << "\n";
         }
         return true;
       }});
  commands_.push_back(
      {"read", "read <file.aag|file.aig|file.bench> — load a netlist",
       [stats_line](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() != 2) throw std::runtime_error("usage: read <file>");
         if (ends_with(args[1], ".bench")) {
           sh.design_ = aig::read_bench_file(args[1]);
         } else {
           sh.design_ = aig::read_aiger_file(args[1]);
         }
         out << stats_line(*sh.design_) << "\n";
         return true;
       }});
  commands_.push_back(
      {"write", "write <file.aag|file.aig|file.bench|file.v> — save design",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() != 2) throw std::runtime_error("usage: write <file>");
         aig::Aig& g = sh.need_design();
         bool ok = true;
         if (ends_with(args[1], ".aag")) {
           ok = aig::write_aiger_ascii(g, args[1]);
         } else if (ends_with(args[1], ".bench")) {
           std::ofstream f(args[1]);
           ok = static_cast<bool>(f);
           if (ok) aig::write_bench(g, f);
         } else if (ends_with(args[1], ".v")) {
           std::ofstream f(args[1]);
           ok = static_cast<bool>(f);
           if (ok) {
             techmap::MapParams params;
             params.keep_netlist = true;
             const auto mapped = techmap::tech_map(g, sh.library_, params);
             techmap::write_verilog(mapped, sh.library_, g, f);
           }
         } else {
           ok = aig::write_aiger_binary(g, args[1]);
         }
         if (!ok) throw std::runtime_error("cannot write " + args[1]);
         out << "wrote " << args[1] << "\n";
         return true;
       }});
  commands_.push_back({"ps", "ps — print design statistics",
                       [stats_line](Shell& sh, const auto&, std::ostream& out) {
                         out << stats_line(sh.need_design()) << "\n";
                         return true;
                       }});
  commands_.push_back(
      {"save", "save — snapshot the design for a later `cec`",
       [](Shell& sh, const auto&, std::ostream& out) {
         sh.saved_ = sh.need_design();
         out << "saved snapshot\n";
         return true;
       }});
  commands_.push_back(
      {"cec", "cec [file] — check equivalence vs file or snapshot",
       [](Shell& sh, const auto& args, std::ostream& out) {
         aig::Aig& g = sh.need_design();
         aig::Aig other;
         if (args.size() >= 2) {
           other = ends_with(args[1], ".bench") ? aig::read_bench_file(args[1])
                                                : aig::read_aiger_file(args[1]);
         } else if (sh.saved_) {
           other = *sh.saved_;
         } else {
           throw std::runtime_error("cec: no snapshot (use `save`) or file");
         }
         // Simulation pre-filter + miter SAT: "equivalent" is a proof
         // (UNSAT miter), not a sampling argument.
         const auto r = sat::check_equivalence(g, other);
         if (r.verdict == sat::CecVerdict::kEquivalent) {
           out << "Networks are equivalent (proved by " << r.method << ", "
               << r.patterns_simulated << " patterns, "
               << r.solver_stats.conflicts << " conflicts)\n";
           return true;
         }
         if (r.verdict == sat::CecVerdict::kNotEquivalent) {
           out << "NOT EQUIVALENT (found by " << r.method << ", PO "
               << r.failing_po << ", inputs ";
           for (bool b : r.counterexample) out << (b ? '1' : '0');
           out << ")\n";
           throw std::runtime_error("cec failed");
         }
         throw std::runtime_error("cec: inconclusive (budget exhausted)");
       }});
  // One command per transformation.
  for (opt::Transform t : opt::all_transforms()) {
    const std::string name = opt::transform_name(t);
    commands_.push_back(
        {name, name + " — apply the '" + name + "' transformation",
         [t, stats_line](Shell& sh, const auto&, std::ostream& out) {
           const auto s = opt::apply_transform(sh.need_design(), t);
           out << s.name << ": " << s.nodes_before << " -> " << s.nodes_after
               << " and, lev " << s.depth_before << " -> " << s.depth_after
               << "\n";
           return true;
         }});
  }
  commands_.push_back(
      {"seq", "seq <rw;rf;b;...> — apply a whole sequence",
       [stats_line](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() != 2) throw std::runtime_error("usage: seq <list>");
         aig::Aig& g = sh.need_design();
         opt::run_sequence(g, opt::parse_sequence(args[1]));
         out << stats_line(g) << "\n";
         return true;
       }});
  commands_.push_back(
      {"map", "map [-a] — technology map (delay-oriented; -a = area)",
       [](Shell& sh, const auto& args, std::ostream& out) {
         techmap::MapParams params;
         if (args.size() > 1 && args[1] == "-a") {
           params.objective = techmap::MapParams::Objective::kArea;
         }
         const auto r = techmap::tech_map(sh.need_design(), sh.library_,
                                          params);
         out << "area = " << r.area_um2 << " um^2  delay = " << r.delay_ps
             << " ps  cells = " << r.num_cells << "\n";
         for (const auto& [name, count] : r.cell_histogram) {
           out << "  " << name << " x" << count << "\n";
         }
         return true;
       }});
  commands_.push_back(
      {"sim", "sim <bits> — simulate one input vector (LSB = first PI)",
       [](Shell& sh, const auto& args, std::ostream& out) {
         aig::Aig& g = sh.need_design();
         if (args.size() != 2 || args[1].size() != g.num_pis()) {
           throw std::runtime_error("usage: sim <" +
                                    std::to_string(g.num_pis()) + " bits>");
         }
         std::vector<bool> in;
         for (char c : args[1]) in.push_back(c == '1');
         const auto outv = aig::simulate(g, in);
         out << "po: ";
         for (bool b : outv) out << (b ? '1' : '0');
         out << "\n";
         return true;
       }});
  commands_.push_back(
      {"tune",
       "tune [dataset] [restarts] — run the CLO pipeline on the design",
       [](Shell& sh, const auto& args, std::ostream& out) {
         core::PipelineConfig config;
         config.dataset_size = args.size() > 1 ? std::stoi(args[1]) : 80;
         config.restarts = args.size() > 2 ? std::stoi(args[2]) : 2;
         config.diffusion_steps = 60;
         config.threads = sh.threads_;
         config.batch = sh.batch_;
         config.checkpoint_dir = sh.checkpoint_dir_;
         config.resume = sh.resume_;
         config.verify = sh.verify_;
         core::QorEvaluator evaluator(sh.need_design());
         core::CloPipeline pipeline(config);
         core::PipelineResult r;
         try {
           r = pipeline.run(evaluator);
         } catch (const std::exception& e) {
           // Even a fatal run leaves an intact, parseable report behind
           // (the chaos-CI contract): status "failed", the error, and the
           // fault arming that produced it.
           if (!sh.report_path_.empty()) {
             obs::Json report = obs::Json::object();
             report["schema"] = obs::Json(std::string("clo.report.v1"));
             report["status"] = obs::Json(std::string("failed"));
             report["error"] = obs::Json(std::string(e.what()));
             const std::string fault = util::fault::describe();
             if (!fault.empty()) report["fault"] = obs::Json(fault);
             report["metrics"] =
                 obs::Registry::instance().snapshot().to_json();
             obs::write_json_file(sh.report_path_, report);
           }
           throw;
         }
         out << "original : area " << r.original.area_um2 << " delay "
             << r.original.delay_ps << "\n";
         out << "optimized: area " << r.best.area_um2 << " delay "
             << r.best.delay_ps << "\n";
         out << "sequence : " << opt::sequence_to_string(r.best_sequence)
             << "\n";
         if (r.resumed_phases > 0) {
           out << "resumed  : " << r.resumed_phases
               << " phase(s) from checkpoint\n";
         }
         if (!r.optimize_quarantined.empty() ||
             !r.validate_quarantined.empty()) {
           out << "quarantined: "
               << r.optimize_quarantined.size() +
                      r.validate_quarantined.size()
               << " restart(s)\n";
         }
         // No wall-clock in this line: tune's stdout is byte-identical
         // across thread counts; per-check latency lives in the report.
         if (!r.verify_verdict.empty()) {
           out << "verify   : " << r.verify_verdict << " ("
               << r.verification.size() << " check(s))\n";
         }
         if (!sh.report_path_.empty()) {
           const auto report = core::pipeline_report(r, evaluator.snapshot());
           if (!obs::write_json_file(sh.report_path_, report)) {
             throw std::runtime_error("cannot write report to " +
                                      sh.report_path_);
           }
           out << "report   : " << sh.report_path_ << "\n";
         }
         // A disproof is fatal — but only after the report (with the
         // counterexample's sequence and verdict) has been written.
         if (r.verify_verdict == "not_equivalent") {
           throw std::runtime_error(
               "verify: an optimized circuit is NOT equivalent to the "
               "original");
         }
         return true;
       }});
  commands_.push_back(
      {"metrics",
       "metrics [reset] — print the obs metrics table, name-sorted (or "
       "clear it)",
       [](Shell&, const auto& args, std::ostream& out) {
         if (args.size() > 1 && args[1] == "reset") {
           obs::Registry::instance().reset();
           out << "metrics reset\n";
           return true;
         }
         if (!obs::enabled()) {
           out << "observability is disabled (run with --metrics, --trace,"
                  " or --report)\n";
           return true;
         }
         out << obs::Registry::instance().snapshot().format_table();
         return true;
       }});
  commands_.push_back(
      {"profile",
       "profile — print the span-derived profile (per-path total/self/p50/"
       "p99)",
       [](Shell&, const auto&, std::ostream& out) {
         if (!obs::enabled()) {
           out << "observability is disabled (run with --trace,"
                  " --profile-out, or --metrics)\n";
           return true;
         }
         out << obs::build_profile().format_table();
         return true;
       }});
  commands_.push_back(
      {"threads",
       "threads [n] — set/show tune's worker threads (0 = hardware)",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() > 1) sh.threads_ = std::stoi(args[1]);
         out << "threads = " << sh.threads_ << "\n";
         return true;
       }});
  commands_.push_back(
      {"batch",
       "batch [on|off] — set/show tune's batched lockstep optimizer",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() > 1) {
           if (args[1] == "on") {
             sh.batch_ = true;
           } else if (args[1] == "off") {
             sh.batch_ = false;
           } else {
             throw std::runtime_error("usage: batch [on|off]");
           }
         }
         out << "batch = " << (sh.batch_ ? "on" : "off") << "\n";
         return true;
       }});
  commands_.push_back(
      {"simd",
       "simd [on|off|scalar|avx2|avx512|auto] — set/show the nn kernel "
       "dispatch target",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() > 1) {
           nn::kernel::Target t;
           if (args[1] == "on") {
             sh.set_simd(true);
           } else if (args[1] == "off") {
             sh.set_simd(false);
           } else if (nn::kernel::parse_target(args[1].c_str(), &t)) {
             const nn::kernel::Target actual = nn::kernel::set_target(t);
             if (actual != t && args[1] != "auto") {
               out << "note: " << args[1]
                   << " not supported on this host; clamped to "
                   << nn::kernel::target_name(actual) << "\n";
             }
           } else {
             throw std::runtime_error(
                 "usage: simd [on|off|scalar|avx2|avx512|auto]");
           }
         }
         out << "simd = " << (sh.simd() ? "on" : "off") << " (target "
             << nn::kernel::active_target() << ", best "
             << nn::kernel::target_name(nn::kernel::best_supported_target())
             << ")\n";
         return true;
       }});
  commands_.push_back(
      {"checkpoint",
       "checkpoint [dir|off] — set/show tune's checkpoint directory",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() > 1) {
           sh.checkpoint_dir_ = args[1] == "off" ? "" : args[1];
         }
         out << "checkpoint dir = "
             << (sh.checkpoint_dir_.empty() ? "(off)" : sh.checkpoint_dir_)
             << "\n";
         return true;
       }});
  commands_.push_back(
      {"resume",
       "resume [on|off] — set/show whether tune resumes from checkpoints",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() > 1) {
           if (args[1] == "on") {
             sh.resume_ = true;
           } else if (args[1] == "off") {
             sh.resume_ = false;
           } else {
             throw std::runtime_error("usage: resume [on|off]");
           }
         }
         out << "resume = " << (sh.resume_ ? "on" : "off") << "\n";
         return true;
       }});
  commands_.push_back(
      {"verify",
       "verify [on|off] — set/show SAT verification of tuned sequences",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() > 1) {
           if (args[1] == "on") {
             sh.verify_ = true;
           } else if (args[1] == "off") {
             sh.verify_ = false;
           } else {
             throw std::runtime_error("usage: verify [on|off]");
           }
         }
         out << "verify = " << (sh.verify_ ? "on" : "off") << "\n";
         return true;
       }});
  commands_.push_back(
      {"fault",
       "fault <specs>|list|off — arm fault injection (site=N | site=pX)",
       [](Shell&, const auto& args, std::ostream& out) {
         if (args.size() != 2) {
           throw std::runtime_error("usage: fault <specs>|list|off");
         }
         if (args[1] == "list") {
           for (const auto& site : util::fault::known_sites()) {
             out << "  " << site << "\n";
           }
           return true;
         }
         if (args[1] == "off") {
           util::fault::disarm();
           out << "fault injection disarmed\n";
           return true;
         }
         util::fault::arm(args[1]);
         out << "armed: " << args[1] << "\n";
         return true;
       }});
  commands_.push_back(
      {"source", "source <script> — run commands from a file",
       [](Shell& sh, const auto& args, std::ostream& out) {
         if (args.size() != 2) throw std::runtime_error("usage: source <file>");
         std::ifstream f(args[1]);
         if (!f) throw std::runtime_error("cannot open " + args[1]);
         const int failures = sh.run_script(f, out);
         if (failures > 0) {
           throw std::runtime_error(std::to_string(failures) +
                                    " commands failed");
         }
         return true;
       }});
  commands_.push_back({"echo", "echo <text> — print text",
                       [](Shell&, const auto& args, std::ostream& out) {
                         for (std::size_t i = 1; i < args.size(); ++i) {
                           out << (i > 1 ? " " : "") << args[i];
                         }
                         out << "\n";
                         return true;
                       }});
  commands_.push_back(
      {"serve",
       "serve start [port] [registry-dir] | status | stop — clo.serve.v1 "
       "daemon",
       [](Shell& sh, const auto& args, std::ostream& out) {
         const std::string sub = args.size() >= 2 ? args[1] : "status";
         if (sub == "start") {
           if (sh.serve_server_ != nullptr) {
             throw std::runtime_error(
                 "serve: already running on 127.0.0.1:" +
                 std::to_string(sh.serve_server_->port()));
           }
           serve::ServerOptions options;
           options.port = args.size() >= 3 ? std::stoi(args[2]) : 0;
           if (args.size() >= 4) options.registry_dir = args[3];
           options.threads = sh.threads_;
           auto server = std::make_unique<serve::Server>(options);
           if (!server->start()) {
             throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                                      std::to_string(options.port));
           }
           sh.serve_server_ = std::move(server);
           out << "serving clo.serve.v1 on 127.0.0.1:"
               << sh.serve_server_->port() << "\n";
           return true;
         }
         if (sub == "stop") {
           if (sh.serve_server_ == nullptr) {
             throw std::runtime_error("serve: not running");
           }
           const auto s = sh.serve_server_->stats();
           sh.serve_server_->stop();
           sh.serve_server_.reset();
           out << "serve stopped (" << s.served << " request(s) served)\n";
           return true;
         }
         if (sub == "status") {
           if (sh.serve_server_ == nullptr) {
             out << "serve: not running\n";
             return true;
           }
           const auto s = sh.serve_server_->stats();
           out << "serving on 127.0.0.1:" << sh.serve_server_->port()
               << ": " << s.served << " served, " << s.shed
               << " shed, queue " << s.queue_depth << ", "
               << sh.serve_server_->registry().size() << " model(s), "
               << sh.serve_server_->registry().trainings()
               << " training(s)\n";
           return true;
         }
         throw std::runtime_error(
             "usage: serve start [port] [registry-dir] | status | stop");
       }});
  commands_.push_back({"quit", "quit — leave the shell",
                       [](Shell&, const auto&, std::ostream&) { return false; }});
}

bool Shell::execute(const std::string& line, std::ostream& out) {
  maybe_start_exporter();
  last_failed_ = false;
  const auto hash = line.find('#');
  const auto tokens = tokenize(hash == std::string::npos
                                   ? line
                                   : line.substr(0, hash));
  if (tokens.empty()) return true;
  for (const auto& command : commands_) {
    if (command.name != tokens[0]) continue;
    try {
      return command.run(*this, tokens, out);
    } catch (const std::exception& e) {
      out << "error: " << e.what() << "\n";
      last_failed_ = true;
      return true;
    }
  }
  out << "unknown command: " << tokens[0] << " (try `help`)\n";
  last_failed_ = true;
  return true;
}

int Shell::run_script(std::istream& in, std::ostream& out) {
  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!execute(line, out)) break;
    if (last_failed_) ++failures;
  }
  return failures;
}

}  // namespace clo::shell
