#pragma once
// An ABC-style interactive shell over the library: load/generate circuits,
// apply transformations, map, check equivalence, run the continuous
// optimizer — scriptable (reads commands from any istream) and fully
// testable. The `clo` binary in tools/ wraps this in a REPL.

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/techmap/cell_library.hpp"

namespace clo::util {
class Exporter;
}

namespace clo::serve {
class Server;
}

namespace clo::shell {

class Shell {
 public:
  Shell();
  ~Shell();

  /// Execute one command line; output goes to `out`.
  /// Returns false when the command asks to quit.
  bool execute(const std::string& line, std::ostream& out);

  /// Run a whole script (one command per line; '#' comments).
  /// Returns the number of failed commands.
  int run_script(std::istream& in, std::ostream& out);

  /// Whether the last command reported an error.
  bool last_failed() const { return last_failed_; }

  /// Current design (nullopt before any read/gen).
  const std::optional<aig::Aig>& design() const { return design_; }

  /// Worker threads used by `tune` (1 = serial, 0 = hardware concurrency).
  /// Also settable at runtime with the `threads` command.
  void set_threads(int n) { threads_ = n; }
  int threads() const { return threads_; }

  /// Whether `tune` uses the batched lockstep optimizer (default) or the
  /// per-restart fallback (`--no-batch`). Also settable at runtime with
  /// the `batch` command.
  void set_batch(bool on) { batch_ = on; }
  bool batch() const { return batch_; }

  /// Whether the nn kernels may dispatch to the SIMD code paths
  /// (`--no-simd` forces the portable scalar kernels). Forwards to the
  /// process-wide clo::nn::kernel dispatch switch; also settable at
  /// runtime with the `simd` command. Both targets produce bitwise
  /// identical results — this exists for benchmarking and bisection.
  void set_simd(bool on);
  bool simd() const;

  /// Force a named nn kernel dispatch target ("scalar", "avx2", "avx512",
  /// or "auto" = best supported; `--kernel-target` flag). Requesting a
  /// target the host cannot run clamps down to the best supported one.
  /// Returns false when the name is unknown. All targets produce bitwise
  /// identical results — this exists for benchmarking and bisection.
  bool set_kernel_target(const std::string& name);

  /// Directory `tune` writes phase checkpoints into (empty = disabled).
  /// Also settable at runtime with the `checkpoint` command.
  void set_checkpoint_dir(std::string dir) { checkpoint_dir_ = std::move(dir); }
  const std::string& checkpoint_dir() const { return checkpoint_dir_; }

  /// Whether `tune` resumes from checkpoints in the checkpoint directory.
  void set_resume(bool on) { resume_ = on; }
  bool resume() const { return resume_; }

  /// Whether `tune` proves every surviving sequence equivalent to the
  /// pre-optimization circuit with the SAT-based checker (`--verify`).
  /// Also settable at runtime with the `verify` command.
  void set_verify(bool on) { verify_ = on; }
  bool verify() const { return verify_; }

  /// Observability hooks (each implies obs::set_enabled(true)):
  /// write a Chrome trace-event file on shutdown,
  void set_trace_path(std::string path);
  /// write the "clo.report.v1" JSON after every `tune`,
  void set_report_path(std::string path);
  /// print the metrics table to stderr on shutdown.
  void set_print_metrics(bool on);
  /// stream clo.metrics.v1 JSONL records to `path` while commands run,
  void set_metrics_out(std::string path);
  /// at this period (default 1000 ms),
  void set_metrics_interval_ms(int ms) { metrics_interval_ms_ = ms; }
  /// serve Prometheus text on 127.0.0.1:<port> while commands run
  /// (0 = ephemeral port),
  void set_metrics_port(int port);
  /// write the "clo.profile.v1" span profile on shutdown.
  void set_profile_path(std::string path);

 private:
  struct Command;
  void register_commands();
  aig::Aig& need_design();
  /// Start the telemetry exporter once, before the first command runs
  /// (after every --metrics-* flag has been parsed).
  void maybe_start_exporter();

  std::optional<aig::Aig> design_;
  std::optional<aig::Aig> saved_;  ///< snapshot for `cec` without a file
  techmap::CellLibrary library_;
  std::vector<Command> commands_;
  bool last_failed_ = false;
  int threads_ = 1;
  bool batch_ = true;
  std::string checkpoint_dir_;
  bool resume_ = false;
  bool verify_ = false;
  std::string trace_path_;
  std::string report_path_;
  bool print_metrics_ = false;
  std::string metrics_out_;
  int metrics_interval_ms_ = 1000;
  int metrics_port_ = -1;
  std::string profile_path_;
  std::unique_ptr<util::Exporter> exporter_;
  bool exporter_attempted_ = false;
  /// In-shell clo.serve.v1 daemon (`serve start`); stopped on shutdown.
  std::unique_ptr<serve::Server> serve_server_;
};

}  // namespace clo::shell
