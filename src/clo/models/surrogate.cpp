#include "clo/models/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clo::models {

using nn::Tensor;

// ---------------------------------------------------------------------------
// AigEncoder
// ---------------------------------------------------------------------------

AigEncoder::AigEncoder(const aig::Aig& g, int hidden, int max_nodes,
                       clo::Rng& rng) {
  // Collect up to max_nodes live nodes (const + PIs + a stride-sampled
  // subset of ANDs) with structural features. Large circuits are
  // subsampled: the encoder needs a circuit fingerprint, not exact logic.
  const auto order = g.topo_order();
  const auto levels = g.levels();
  const int depth = std::max(1, g.depth());

  std::vector<std::uint32_t> selected;
  selected.push_back(0);
  for (std::size_t i = 0; i < g.num_pis(); ++i) selected.push_back(g.pi_node(i));
  const std::size_t budget =
      max_nodes > static_cast<int>(selected.size())
          ? static_cast<std::size_t>(max_nodes) - selected.size()
          : 0;
  const std::size_t stride =
      budget == 0 ? order.size() + 1
                  : std::max<std::size_t>(1, order.size() / std::max<std::size_t>(budget, 1));
  std::vector<int> index_of(g.num_slots(), -1);
  for (std::size_t i = 0; i < order.size(); i += stride) selected.push_back(order[i]);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    index_of[selected[i]] = static_cast<int>(i);
  }

  const int f = 6;
  features_ = Tensor::zeros({static_cast<int>(selected.size()), f});
  fanin0_.resize(selected.size(), 0);
  fanin1_.resize(selected.size(), 0);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::uint32_t n = selected[i];
    float* row = features_.data().data() + i * f;
    row[0] = g.is_pi(n) ? 1.0f : 0.0f;
    row[1] = g.is_and(n) ? 1.0f : 0.0f;
    row[2] = static_cast<float>(levels[n]) / static_cast<float>(depth);
    row[3] = std::min(1.0f, static_cast<float>(g.nrefs(n)) / 8.0f);
    if (g.is_and(n)) {
      row[4] = aig::lit_is_compl(g.fanin0(n)) ? 1.0f : 0.0f;
      row[5] = aig::lit_is_compl(g.fanin1(n)) ? 1.0f : 0.0f;
      // Fanin pointers: nearest selected ancestor fallback = const row 0.
      const int i0 = index_of[aig::lit_node(g.fanin0(n))];
      const int i1 = index_of[aig::lit_node(g.fanin1(n))];
      fanin0_[i] = i0 >= 0 ? i0 : 0;
      fanin1_[i] = i1 >= 0 ? i1 : 0;
    }
  }
  self1_ = std::make_unique<nn::Linear>(f, hidden, rng);
  in1_ = std::make_unique<nn::Linear>(f, hidden, rng);
  self2_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  in2_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
}

Tensor AigEncoder::forward() {
  // Layer 1: h = relu(W_self x + W_in mean(fanin x))
  Tensor msg0 = nn::gather_rows(features_, fanin0_);
  Tensor msg1 = nn::gather_rows(features_, fanin1_);
  Tensor msg = nn::scale(nn::add(msg0, msg1), 0.5f);
  Tensor h = nn::relu(nn::add(self1_->forward(features_), in1_->forward(msg)));
  // Layer 2 over h.
  Tensor m0 = nn::gather_rows(h, fanin0_);
  Tensor m1 = nn::gather_rows(h, fanin1_);
  Tensor m = nn::scale(nn::add(m0, m1), 0.5f);
  Tensor h2 = nn::relu(nn::add(self2_->forward(h), in2_->forward(m)));
  return nn::mean_rows(h2);  // [1, hidden]
}

std::vector<Tensor> AigEncoder::parameters() {
  std::vector<Tensor> p;
  for (auto* m : {self1_.get(), in1_.get(), self2_.get(), in2_.get()}) {
    auto q = m->parameters();
    p.insert(p.end(), q.begin(), q.end());
  }
  return p;
}

namespace {

/// Broadcast a [1, c] tensor to [rows, c] (differentiable via matmul).
Tensor broadcast_rows(const Tensor& row, int rows) {
  Tensor ones = Tensor::full({rows, 1}, 1.0f);
  return nn::matmul(ones, row);
}

/// Split a [B, L*d] batch into L step tensors of [B, d].
std::vector<Tensor> split_steps(const Tensor& x, int L, int d) {
  std::vector<Tensor> steps;
  steps.reserve(L);
  for (int t = 0; t < L; ++t) {
    steps.push_back(nn::slice_cols(x, t * d, (t + 1) * d));
  }
  return steps;
}

// ---------------------------------------------------------------------------
// MTL (ASAP [22]): GNN + LSTM + two attention heads.
// ---------------------------------------------------------------------------

class MtlSurrogate final : public SurrogateModel {
 public:
  MtlSurrogate(const aig::Aig& g, const SurrogateConfig& cfg, clo::Rng& rng)
      : SurrogateModel(cfg),
        name_("mtl"),
        encoder_(g, cfg.circuit_hidden, cfg.max_gnn_nodes, rng),
        lstm_(cfg.embed_dim, cfg.hidden, rng),
        attn_area_(cfg.hidden, cfg.hidden, rng),
        attn_delay_(cfg.hidden, cfg.hidden, rng),
        head_area_(cfg.hidden + cfg.circuit_hidden, cfg.hidden, 1, rng),
        head_delay_(cfg.hidden + cfg.circuit_hidden, cfg.hidden, 1, rng) {}

  Output forward(const Tensor& x) override {
    const int B = x.dim(0);
    auto steps = split_steps(x, config_.seq_len, config_.embed_dim);
    auto hs = lstm_.forward(steps);
    Tensor circ = broadcast_rows(encoder_.forward(), B);
    Tensor fa = nn::concat_cols(attn_area_.forward(hs), circ);
    Tensor fd = nn::concat_cols(attn_delay_.forward(hs), circ);
    return Output{head_area_.forward(fa), head_delay_.forward(fd)};
  }

  const std::string& name() const override { return name_; }

  std::vector<Tensor> parameters() override {
    std::vector<Tensor> p;
    for (nn::Module* m :
         std::initializer_list<nn::Module*>{&encoder_, &lstm_, &attn_area_,
                                            &attn_delay_, &head_area_,
                                            &head_delay_}) {
      auto q = m->parameters();
      p.insert(p.end(), q.begin(), q.end());
    }
    return p;
  }

 private:
  std::string name_;
  AigEncoder encoder_;
  nn::Lstm lstm_;
  nn::AttentionPool attn_area_, attn_delay_;
  nn::Mlp head_area_, head_delay_;
};

// ---------------------------------------------------------------------------
// LOSTIN [21]: GNN + LSTM final state, MLP heads.
// ---------------------------------------------------------------------------

class LostinSurrogate final : public SurrogateModel {
 public:
  LostinSurrogate(const aig::Aig& g, const SurrogateConfig& cfg, clo::Rng& rng)
      : SurrogateModel(cfg),
        name_("lostin"),
        encoder_(g, cfg.circuit_hidden, cfg.max_gnn_nodes, rng),
        lstm_(cfg.embed_dim, cfg.hidden, rng),
        head_area_(cfg.hidden + cfg.circuit_hidden, cfg.hidden, 1, rng),
        head_delay_(cfg.hidden + cfg.circuit_hidden, cfg.hidden, 1, rng) {}

  Output forward(const Tensor& x) override {
    const int B = x.dim(0);
    auto steps = split_steps(x, config_.seq_len, config_.embed_dim);
    auto hs = lstm_.forward(steps);
    Tensor circ = broadcast_rows(encoder_.forward(), B);
    Tensor feat = nn::concat_cols(hs.back(), circ);
    return Output{head_area_.forward(feat), head_delay_.forward(feat)};
  }

  const std::string& name() const override { return name_; }

  std::vector<Tensor> parameters() override {
    std::vector<Tensor> p;
    for (nn::Module* m : std::initializer_list<nn::Module*>{
             &encoder_, &lstm_, &head_area_, &head_delay_}) {
      auto q = m->parameters();
      p.insert(p.end(), q.begin(), q.end());
    }
    return p;
  }

 private:
  std::string name_;
  AigEncoder encoder_;
  nn::Lstm lstm_;
  nn::Mlp head_area_, head_delay_;
};

// ---------------------------------------------------------------------------
// CNN [4]: 1-D convolutions over the embedded sequence.
// ---------------------------------------------------------------------------

class CnnSurrogate final : public SurrogateModel {
 public:
  CnnSurrogate(const aig::Aig& /*g*/, const SurrogateConfig& cfg, clo::Rng& rng)
      : SurrogateModel(cfg),
        name_("cnn"),
        conv1_(cfg.embed_dim, cfg.hidden, 3, rng),
        conv2_(cfg.hidden, cfg.hidden, 3, rng),
        head_area_(cfg.hidden, cfg.hidden, 1, rng),
        head_delay_(cfg.hidden, cfg.hidden, 1, rng) {}

  Output forward(const Tensor& x) override {
    const int B = x.dim(0);
    const int L = config_.seq_len, d = config_.embed_dim;
    // [B, L*d] -> [B, d, L]: embedding dimensions become conv channels,
    // sequence positions the length axis. Built differentiably by slicing
    // strided columns and stacking them as channels.
    Tensor chans;  // [B, d, L]
    for (int c = 0; c < d; ++c) {
      Tensor col;  // [B, L] = columns c, c+d, c+2d, ...
      for (int t = 0; t < L; ++t) {
        Tensor v = nn::slice_cols(x, t * d + c, t * d + c + 1);
        col = col.defined() ? nn::concat_cols(col, v) : v;
      }
      Tensor as3d = nn::reshape(col, {B, 1, L});
      chans = chans.defined() ? nn::concat_channels(chans, as3d) : as3d;
    }
    Tensor h = nn::relu(conv1_.forward(chans));
    h = nn::avg_pool1d(h);  // L -> L/2
    h = nn::relu(conv2_.forward(h));
    // Global average pooling over the length axis (keeps the head small
    // enough to generalize from a few hundred labeled sequences).
    Tensor rows = nn::reshape(h, {B * config_.hidden, L / 2});
    Tensor ones = Tensor::full({L / 2, 1}, 2.0f / static_cast<float>(L));
    Tensor pooled = nn::reshape(nn::matmul(rows, ones), {B, config_.hidden});
    return Output{head_area_.forward(pooled), head_delay_.forward(pooled)};
  }

  const std::string& name() const override { return name_; }

  std::vector<Tensor> parameters() override {
    std::vector<Tensor> p;
    for (nn::Module* m : std::initializer_list<nn::Module*>{
             &conv1_, &conv2_, &head_area_, &head_delay_}) {
      auto q = m->parameters();
      p.insert(p.end(), q.begin(), q.end());
    }
    return p;
  }

 private:
  std::string name_;
  nn::Conv1dLayer conv1_, conv2_;
  nn::Mlp head_area_, head_delay_;
};

}  // namespace

std::unique_ptr<SurrogateModel> make_mtl_surrogate(const aig::Aig& g,
                                                   const SurrogateConfig& cfg,
                                                   clo::Rng& rng) {
  return std::make_unique<MtlSurrogate>(g, cfg, rng);
}

std::unique_ptr<SurrogateModel> make_lostin_surrogate(
    const aig::Aig& g, const SurrogateConfig& cfg, clo::Rng& rng) {
  return std::make_unique<LostinSurrogate>(g, cfg, rng);
}

std::unique_ptr<SurrogateModel> make_cnn_surrogate(const aig::Aig& g,
                                                   const SurrogateConfig& cfg,
                                                   clo::Rng& rng) {
  return std::make_unique<CnnSurrogate>(g, cfg, rng);
}

std::unique_ptr<SurrogateModel> make_surrogate(const std::string& kind,
                                               const aig::Aig& g,
                                               const SurrogateConfig& cfg,
                                               clo::Rng& rng) {
  if (kind == "mtl") return make_mtl_surrogate(g, cfg, rng);
  if (kind == "lostin") return make_lostin_surrogate(g, cfg, rng);
  if (kind == "cnn") return make_cnn_surrogate(g, cfg, rng);
  throw std::invalid_argument("unknown surrogate kind: " + kind);
}

}  // namespace clo::models
