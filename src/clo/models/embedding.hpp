#pragma once
// The sequence embedding g(.) of the paper: each transformation in S maps
// to a point in R^d. The diffusion model learns the distribution of
// sequences of these points; retrieval maps optimized latents back to the
// nearest transformation per position (Section III-D — instant because the
// denoising process keeps latents on the embedding manifold).

#include <vector>

#include "clo/opt/transform.hpp"
#include "clo/util/rng.hpp"

namespace clo::models {

class TransformEmbedding {
 public:
  /// Fixed, well-separated embeddings: random Gaussian directions that are
  /// orthogonalized (d >= |S| = 7) then scaled to norm sqrt(dim), giving
  /// each latent coordinate ~unit variance (diffusion-friendly).
  TransformEmbedding(int dim, clo::Rng& rng);

  /// Restore from a saved table (checkpoint resume): the rows must match
  /// kNumTransforms and share one dimension >= kNumTransforms. No rng is
  /// consumed, so a resumed run sees the exact embedding geometry of the
  /// interrupted one.
  explicit TransformEmbedding(std::vector<std::vector<float>> table);

  int dim() const { return dim_; }

  /// Embedding vector of one transformation.
  const std::vector<float>& of(opt::Transform t) const {
    return table_[static_cast<int>(t)];
  }

  /// Flattened [L * dim] embedding of a sequence.
  std::vector<float> embed(const opt::Sequence& seq) const;

  /// Nearest-transformation decode of one position.
  opt::Transform nearest(const float* point) const;

  /// Decode a flattened [L * dim] latent back to a sequence.
  opt::Sequence retrieve(const std::vector<float>& latent, int length) const;

  /// Mean Euclidean distance from each position of `latent` to its nearest
  /// feasible embedding — the paper's discrepancy H(x) proxy, reported in
  /// the Fig. 7 experiment.
  double discrepancy(const std::vector<float>& latent, int length) const;

  /// Batched decode: one table scan per position retrieves the sequence
  /// AND its discrepancy for every latent (the batched optimizer needs
  /// both at every traced step; the separate retrieve/discrepancy calls
  /// would scan the table twice). out_discrepancy may be null.
  std::vector<opt::Sequence> retrieve_batch(
      const std::vector<std::vector<float>>& latents, int length,
      std::vector<double>* out_discrepancy = nullptr) const;

  /// Batched discrepancy over R latents.
  std::vector<double> discrepancy_batch(
      const std::vector<std::vector<float>>& latents, int length) const;

  /// All 7 embedding rows (for t-SNE plots).
  const std::vector<std::vector<float>>& table() const { return table_; }

 private:
  int dim_;
  std::vector<std::vector<float>> table_;
};

}  // namespace clo::models
