#pragma once
// QoR surrogate models F̂(x): predict normalized (area, delay) after
// synthesis from a sequence embedding x. Three architectures matching the
// paper's ablation (Fig. 6):
//  * MtlSurrogate  — MTL-based model of [22] (ASAP): GNN circuit encoder +
//                    LSTM over the sequence + two attention heads.
//  * LostinSurrogate — hybrid graph/temporal model of [21]: GNN + LSTM
//                    final state, MLP heads.
//  * CnnSurrogate  — CNN model of [4]: 1-D convolutions over the sequence.
// All are differentiable w.r.t. the input embedding, which is what enables
// the continuous optimization (Eq. 3).

#include <memory>
#include <string>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/nn/modules.hpp"
#include "clo/util/rng.hpp"

namespace clo::models {

struct SurrogateConfig {
  int seq_len = 20;       ///< L
  int embed_dim = 8;      ///< d
  int hidden = 32;
  int circuit_hidden = 16;
  int max_gnn_nodes = 512;  ///< subsample cap for very large AIGs
};

/// Differentiable two-headed QoR predictor over [B, L*d] embeddings.
class SurrogateModel : public nn::Module {
 public:
  struct Output {
    nn::Tensor area;   ///< [B, 1], normalized
    nn::Tensor delay;  ///< [B, 1], normalized
  };

  virtual Output forward(const nn::Tensor& x) = 0;
  virtual const std::string& name() const = 0;
  const SurrogateConfig& config() const { return config_; }

 protected:
  explicit SurrogateModel(const SurrogateConfig& config) : config_(config) {}
  SurrogateConfig config_;
};

/// Shared GNN encoder over the (fixed) target AIG: message passing over
/// fanin edges, mean-pooled to one circuit embedding.
class AigEncoder : public nn::Module {
 public:
  AigEncoder(const aig::Aig& g, int hidden, int max_nodes, clo::Rng& rng);
  /// Circuit embedding [1, hidden] (recomputed so gradients reach the
  /// GNN weights; the input features are fixed).
  nn::Tensor forward();
  std::vector<nn::Tensor> parameters() override;

 private:
  nn::Tensor features_;         // [n, f] fixed node features
  std::vector<int> fanin0_, fanin1_;
  std::unique_ptr<nn::Linear> self1_, in1_, self2_, in2_;
};

std::unique_ptr<SurrogateModel> make_mtl_surrogate(const aig::Aig& g,
                                                   const SurrogateConfig& cfg,
                                                   clo::Rng& rng);
std::unique_ptr<SurrogateModel> make_lostin_surrogate(
    const aig::Aig& g, const SurrogateConfig& cfg, clo::Rng& rng);
std::unique_ptr<SurrogateModel> make_cnn_surrogate(const aig::Aig& g,
                                                   const SurrogateConfig& cfg,
                                                   clo::Rng& rng);

std::unique_ptr<SurrogateModel> make_surrogate(const std::string& kind,
                                               const aig::Aig& g,
                                               const SurrogateConfig& cfg,
                                               clo::Rng& rng);

}  // namespace clo::models
