#include "clo/models/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "clo/nn/kernel.hpp"

namespace clo::models {

TransformEmbedding::TransformEmbedding(int dim, clo::Rng& rng) : dim_(dim) {
  if (dim < opt::kNumTransforms) {
    throw std::invalid_argument(
        "embedding dim must be >= number of transformations");
  }
  // Gram-Schmidt over random Gaussian vectors -> orthonormal, well
  // separated (pairwise distance sqrt(2)); keeps retrieval unambiguous.
  table_.assign(opt::kNumTransforms, std::vector<float>(dim, 0.0f));
  for (int t = 0; t < opt::kNumTransforms; ++t) {
    auto& v = table_[t];
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    for (int u = 0; u < t; ++u) {
      float dot = 0.0f;
      for (int i = 0; i < dim; ++i) dot += v[i] * table_[u][i];
      for (int i = 0; i < dim; ++i) v[i] -= dot * table_[u][i];
    }
    float norm = 0.0f;
    for (float x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-6f) {
      throw std::runtime_error("degenerate embedding init");
    }
    for (auto& x : v) x /= norm;  // unit rows while orthogonalizing
  }
  // Scale rows to norm sqrt(dim) so each latent coordinate has ~unit
  // variance — matching the N(0, I) reference of the diffusion process
  // (the same reason latent-diffusion pipelines standardize latents).
  const float target = std::sqrt(static_cast<float>(dim));
  for (auto& v : table_) {
    for (auto& x : v) x *= target;
  }
}

TransformEmbedding::TransformEmbedding(std::vector<std::vector<float>> table)
    : dim_(table.empty() ? 0 : static_cast<int>(table.front().size())),
      table_(std::move(table)) {
  if (static_cast<int>(table_.size()) != opt::kNumTransforms) {
    throw std::invalid_argument("embedding table: wrong row count");
  }
  if (dim_ < opt::kNumTransforms) {
    throw std::invalid_argument(
        "embedding dim must be >= number of transformations");
  }
  for (const auto& row : table_) {
    if (static_cast<int>(row.size()) != dim_) {
      throw std::invalid_argument("embedding table: ragged rows");
    }
  }
}

std::vector<float> TransformEmbedding::embed(const opt::Sequence& seq) const {
  std::vector<float> out;
  out.reserve(seq.size() * dim_);
  for (opt::Transform t : seq) {
    const auto& v = of(t);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

namespace {

/// One table scan: index of the nearest embedding row and (via out
/// param) its squared distance. First-lowest tie-break; distances go
/// through kernel::sqdist, whose fixed 8-lane reduction makes the winning
/// index identical on both dispatch targets (this is the scan behind every
/// retrieved sequence, so `--no-simd` must not change it).
int nearest_scan(const float* point, int dim,
                 const std::vector<std::vector<float>>& table,
                 float* best_d2_out) {
  int best = 0;
  float best_d2 = 1e30f;
  for (int t = 0; t < opt::kNumTransforms; ++t) {
    const float d2 = nn::kernel::sqdist(point, table[t].data(), dim);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = t;
    }
  }
  *best_d2_out = best_d2;
  return best;
}

}  // namespace

opt::Transform TransformEmbedding::nearest(const float* point) const {
  float best_d2 = 0.0f;
  return static_cast<opt::Transform>(
      nearest_scan(point, dim_, table_, &best_d2));
}

opt::Sequence TransformEmbedding::retrieve(const std::vector<float>& latent,
                                           int length) const {
  opt::Sequence seq(length);
  for (int p = 0; p < length; ++p) {
    seq[p] = nearest(latent.data() + static_cast<std::size_t>(p) * dim_);
  }
  return seq;
}

double TransformEmbedding::discrepancy(const std::vector<float>& latent,
                                       int length) const {
  double total = 0.0;
  for (int p = 0; p < length; ++p) {
    const float* point = latent.data() + static_cast<std::size_t>(p) * dim_;
    float best_d2 = 0.0f;
    nearest_scan(point, dim_, table_, &best_d2);
    total += std::sqrt(static_cast<double>(best_d2));
  }
  return total / length;
}

std::vector<opt::Sequence> TransformEmbedding::retrieve_batch(
    const std::vector<std::vector<float>>& latents, int length,
    std::vector<double>* out_discrepancy) const {
  std::vector<opt::Sequence> seqs(latents.size(), opt::Sequence(length));
  if (out_discrepancy != nullptr) {
    out_discrepancy->assign(latents.size(), 0.0);
  }
  for (std::size_t r = 0; r < latents.size(); ++r) {
    double total = 0.0;
    for (int p = 0; p < length; ++p) {
      const float* point =
          latents[r].data() + static_cast<std::size_t>(p) * dim_;
      float best_d2 = 0.0f;
      seqs[r][p] = static_cast<opt::Transform>(
          nearest_scan(point, dim_, table_, &best_d2));
      total += std::sqrt(static_cast<double>(best_d2));
    }
    if (out_discrepancy != nullptr) (*out_discrepancy)[r] = total / length;
  }
  return seqs;
}

std::vector<double> TransformEmbedding::discrepancy_batch(
    const std::vector<std::vector<float>>& latents, int length) const {
  std::vector<double> out(latents.size(), 0.0);
  for (std::size_t r = 0; r < latents.size(); ++r) {
    out[r] = discrepancy(latents[r], length);
  }
  return out;
}

}  // namespace clo::models
