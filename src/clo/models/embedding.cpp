#include "clo/models/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace clo::models {

TransformEmbedding::TransformEmbedding(int dim, clo::Rng& rng) : dim_(dim) {
  if (dim < opt::kNumTransforms) {
    throw std::invalid_argument(
        "embedding dim must be >= number of transformations");
  }
  // Gram-Schmidt over random Gaussian vectors -> orthonormal, well
  // separated (pairwise distance sqrt(2)); keeps retrieval unambiguous.
  table_.assign(opt::kNumTransforms, std::vector<float>(dim, 0.0f));
  for (int t = 0; t < opt::kNumTransforms; ++t) {
    auto& v = table_[t];
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    for (int u = 0; u < t; ++u) {
      float dot = 0.0f;
      for (int i = 0; i < dim; ++i) dot += v[i] * table_[u][i];
      for (int i = 0; i < dim; ++i) v[i] -= dot * table_[u][i];
    }
    float norm = 0.0f;
    for (float x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-6f) {
      throw std::runtime_error("degenerate embedding init");
    }
    for (auto& x : v) x /= norm;  // unit rows while orthogonalizing
  }
  // Scale rows to norm sqrt(dim) so each latent coordinate has ~unit
  // variance — matching the N(0, I) reference of the diffusion process
  // (the same reason latent-diffusion pipelines standardize latents).
  const float target = std::sqrt(static_cast<float>(dim));
  for (auto& v : table_) {
    for (auto& x : v) x *= target;
  }
}

std::vector<float> TransformEmbedding::embed(const opt::Sequence& seq) const {
  std::vector<float> out;
  out.reserve(seq.size() * dim_);
  for (opt::Transform t : seq) {
    const auto& v = of(t);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

opt::Transform TransformEmbedding::nearest(const float* point) const {
  int best = 0;
  float best_d2 = 1e30f;
  for (int t = 0; t < opt::kNumTransforms; ++t) {
    float d2 = 0.0f;
    for (int i = 0; i < dim_; ++i) {
      const float d = point[i] - table_[t][i];
      d2 += d * d;
    }
    if (d2 < best_d2) {
      best_d2 = d2;
      best = t;
    }
  }
  return static_cast<opt::Transform>(best);
}

opt::Sequence TransformEmbedding::retrieve(const std::vector<float>& latent,
                                           int length) const {
  opt::Sequence seq(length);
  for (int p = 0; p < length; ++p) {
    seq[p] = nearest(latent.data() + static_cast<std::size_t>(p) * dim_);
  }
  return seq;
}

double TransformEmbedding::discrepancy(const std::vector<float>& latent,
                                       int length) const {
  double total = 0.0;
  for (int p = 0; p < length; ++p) {
    const float* point = latent.data() + static_cast<std::size_t>(p) * dim_;
    float best_d2 = 1e30f;
    for (int t = 0; t < opt::kNumTransforms; ++t) {
      float d2 = 0.0f;
      for (int i = 0; i < dim_; ++i) {
        const float d = point[i] - table_[t][i];
        d2 += d * d;
      }
      best_d2 = std::min(best_d2, d2);
    }
    total += std::sqrt(static_cast<double>(best_d2));
  }
  return total / length;
}

}  // namespace clo::models
