#include "clo/models/diffusion.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "clo/nn/optim.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/obs.hpp"

namespace clo::models {

using nn::Tensor;

DdpmSchedule::DdpmSchedule(int num_steps, float beta_start, float beta_end)
    : T_(num_steps) {
  if (num_steps < 2) throw std::invalid_argument("DdpmSchedule: T too small");
  beta_.resize(T_);
  alpha_.resize(T_);
  alpha_bar_.resize(T_);
  sigma_.resize(T_);
  // The reference beta range is tuned for T = 1000 (Ho et al.); rescale so
  // the cumulative noise at t = T matches regardless of T (otherwise short
  // schedules never reach pure Gaussian and x_T ~ N(0, I) is off-manifold).
  // Cap the largest beta at 0.25: beyond that the 1/sqrt(alpha) factor in
  // the reverse update amplifies denoiser error too aggressively for the
  // small networks used here.
  const float scale =
      std::min(1000.0f / static_cast<float>(T_), 0.25f / beta_end);
  float bar = 1.0f;
  for (int t = 0; t < T_; ++t) {
    beta_[t] = scale * (beta_start +
                        (beta_end - beta_start) * static_cast<float>(t) /
                            static_cast<float>(T_ - 1));
    alpha_[t] = 1.0f - beta_[t];
    bar *= alpha_[t];
    alpha_bar_[t] = bar;
  }
  for (int t = 0; t < T_; ++t) {
    // beta~_t = (1 - abar_{t-1}) / (1 - abar_t) * beta_t.
    const float abar_prev = t == 0 ? 1.0f : alpha_bar_[t - 1];
    sigma_[t] = std::sqrt((1.0f - abar_prev) / (1.0f - alpha_bar_[t]) *
                          beta_[t]);
  }
}

DiffusionUNet::DiffusionUNet(const DiffusionConfig& cfg, clo::Rng& rng)
    : cfg_(cfg) {
  if (cfg.seq_len % 4 != 0) {
    throw std::invalid_argument("U-Net needs seq_len divisible by 4");
  }
  const int C = cfg.channels;
  time1_ = std::make_unique<nn::Linear>(cfg.time_dim, cfg.time_dim, rng);
  time2_ = std::make_unique<nn::Linear>(cfg.time_dim, cfg.time_dim, rng);
  film_in_ = std::make_unique<nn::Linear>(cfg.time_dim, C, rng);
  film_mid_ = std::make_unique<nn::Linear>(cfg.time_dim, 2 * C, rng);
  in_conv_ = std::make_unique<nn::Conv1dLayer>(cfg.embed_dim, C, 3, rng);
  down1_ = std::make_unique<nn::Conv1dLayer>(C, 2 * C, 3, rng);
  down2_ = std::make_unique<nn::Conv1dLayer>(2 * C, 2 * C, 3, rng);
  mid_ = std::make_unique<nn::Conv1dLayer>(2 * C, 2 * C, 3, rng);
  up1_ = std::make_unique<nn::Conv1dLayer>(4 * C, C, 3, rng);
  up2_ = std::make_unique<nn::Conv1dLayer>(2 * C, C, 3, rng);
  out_conv_ = std::make_unique<nn::Conv1dLayer>(C, cfg.embed_dim, 3, rng);
}

Tensor DiffusionUNet::forward(const Tensor& x, const std::vector<int>& t) {
  if (x.ndim() != 3 || x.dim(0) != static_cast<int>(t.size())) {
    throw std::invalid_argument("DiffusionUNet: bad input");
  }
  Tensor temb = nn::timestep_embedding(t, cfg_.time_dim);
  temb = nn::silu(time1_->forward(temb));
  temb = nn::silu(time2_->forward(temb));

  // Encoder.
  Tensor h0 = nn::silu(nn::add_channel_bias(in_conv_->forward(x),
                                            film_in_->forward(temb)));  // [B,C,L]
  Tensor h1 = nn::silu(down1_->forward(nn::avg_pool1d(h0)));            // [B,2C,L/2]
  Tensor h2 = nn::silu(nn::add_channel_bias(
      down2_->forward(nn::avg_pool1d(h1)), film_mid_->forward(temb)));  // [B,2C,L/4]
  // Bottleneck.
  Tensor m = nn::silu(mid_->forward(h2));                               // [B,2C,L/4]
  // Decoder with skip connections.
  Tensor u1 = nn::silu(up1_->forward(
      nn::concat_channels(nn::upsample1d(m), h1)));                     // [B,C,L/2]
  Tensor u2 = nn::silu(up2_->forward(
      nn::concat_channels(nn::upsample1d(u1), h0)));                    // [B,C,L]
  return out_conv_->forward(u2);                                       // [B,d,L]
}

std::vector<Tensor> DiffusionUNet::parameters() {
  std::vector<Tensor> p;
  auto push = [&](nn::Module& m) {
    auto q = m.parameters();
    p.insert(p.end(), q.begin(), q.end());
  };
  push(*time1_);
  push(*time2_);
  push(*film_in_);
  push(*film_mid_);
  push(*in_conv_);
  push(*down1_);
  push(*down2_);
  push(*mid_);
  push(*up1_);
  push(*up2_);
  push(*out_conv_);
  return p;
}

void to_channel_layout_into(const float* flat, int L, int d, float* chan) {
  for (int t = 0; t < L; ++t) {
    for (int c = 0; c < d; ++c) {
      chan[static_cast<std::size_t>(c) * L + t] =
          flat[static_cast<std::size_t>(t) * d + c];
    }
  }
}

void from_channel_layout_into(const float* chan, int L, int d, float* flat) {
  for (int t = 0; t < L; ++t) {
    for (int c = 0; c < d; ++c) {
      flat[static_cast<std::size_t>(t) * d + c] =
          chan[static_cast<std::size_t>(c) * L + t];
    }
  }
}

std::vector<float> to_channel_layout(const std::vector<float>& flat, int L,
                                     int d) {
  std::vector<float> out(flat.size());
  to_channel_layout_into(flat.data(), L, d, out.data());
  return out;
}

std::vector<float> from_channel_layout(const std::vector<float>& chan, int L,
                                       int d) {
  std::vector<float> out(chan.size());
  from_channel_layout_into(chan.data(), L, d, out.data());
  return out;
}

DiffusionModel::DiffusionModel(const DiffusionConfig& cfg, clo::Rng& rng)
    : cfg_(cfg), schedule_(cfg.num_steps),
      unet_(std::make_unique<DiffusionUNet>(cfg, rng)) {}

DiffusionModel::TrainStats DiffusionModel::train(
    const std::vector<std::vector<float>>& data, int iterations,
    int batch_size, float lr, clo::Rng& rng,
    const util::CancelToken* cancel) {
  if (data.empty()) throw std::invalid_argument("diffusion train: no data");
  const int L = cfg_.seq_len, d = cfg_.embed_dim;
  // Divergence guard: mirror the surrogate trainer — keep the last weights
  // known to produce a finite loss, and on a NaN/Inf iteration roll back,
  // halve the LR (fresh optimizer moments), and keep going.
  std::vector<Tensor> params = unet_->parameters();
  std::vector<nn::FloatBuf> last_good;
  last_good.reserve(params.size());
  for (const auto& p : params) last_good.push_back(p.impl()->data);
  auto opt = std::make_unique<nn::Adam>(unet_->parameters(), lr);
  TrainStats stats;
  double loss_avg = 0.0;
  const int sample_every = std::max(1, iterations / 100);
  CLO_TRACE_SPAN("diffusion.train");
  obs::Progress progress(
      "diffusion_train",
      static_cast<std::uint64_t>(iterations > 0 ? iterations : 0));
  for (int it = 0; it < iterations; ++it) {
    if (cancel != nullptr) cancel->check();
    CLO_FAULT_POINT("diffusion.train_step");
    const int B = batch_size;
    Tensor x = Tensor::zeros({B, d, L});
    Tensor eps = Tensor::zeros({B, d, L});
    std::vector<int> ts(B);
    for (int b = 0; b < B; ++b) {
      const auto& x0 =
          data[rng.next_below(data.size())];           // j ~ Random(1, N)
      const int t = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(schedule_.num_steps())));  // t ~ Random
      ts[b] = t;
      const float sa = std::sqrt(schedule_.alpha_bar(t));
      const float sb = std::sqrt(1.0f - schedule_.alpha_bar(t));
      const auto chan = to_channel_layout(x0, L, d);
      for (int i = 0; i < d * L; ++i) {
        const float e = static_cast<float>(rng.next_gaussian());
        eps.data()[b * d * L + i] = e;
        x.data()[b * d * L + i] = sa * chan[i] + sb * e;  // Eq. (10) inner
      }
    }
    Tensor pred = unet_->forward(x, ts);
    Tensor loss = nn::mse_loss(pred, eps);
    nn::backward(loss);
    double loss_val = loss.item();
    if (CLO_FAULT_FIRED("diffusion.loss_nan")) {
      loss_val = std::numeric_limits<double>::quiet_NaN();
    }
    if (!std::isfinite(loss_val)) {
      if (++stats.lr_backoffs > kMaxLrBackoffs) {
        throw std::runtime_error(
            "diffusion train: diverged (non-finite loss after " +
            std::to_string(kMaxLrBackoffs) + " LR backoffs)");
      }
      for (std::size_t p = 0; p < params.size(); ++p) {
        params[p].impl()->data = last_good[p];
      }
      lr *= 0.5f;
      opt = std::make_unique<nn::Adam>(unet_->parameters(), lr);
      opt->zero_grad();  // drop the non-finite gradients just accumulated
      CLO_OBS_COUNT("diffusion.lr_backoffs", 1);
      continue;
    }
    for (std::size_t p = 0; p < params.size(); ++p) {
      last_good[p] = params[p].impl()->data;
    }
    opt->step();
    loss_avg = 0.95 * loss_avg + 0.05 * loss_val;
    stats.iterations = it + 1;
    stats.final_loss = loss_avg;
    if (it % sample_every == 0 || it == iterations - 1) {
      stats.loss_curve.push_back(loss_avg);
    }
    progress.tick();
    CLO_OBS_COUNT("diffusion.iterations", 1);
  }
  CLO_OBS_GAUGE("diffusion.final_loss", stats.final_loss);
  return stats;
}

std::vector<float> DiffusionModel::sample(clo::Rng& rng) {
  const int L = cfg_.seq_len, d = cfg_.embed_dim;
  std::vector<float> x(static_cast<std::size_t>(L) * d);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  for (int t = schedule_.num_steps() - 1; t >= 0; --t) {
    const auto eps = predict_noise(x, t);
    // x0-parameterized posterior step with clipping: reconstruct x̂0,
    // clamp it to the data range, and sample q(x_{t-1} | x_t, x̂0). The
    // clamp keeps small-model denoiser error from compounding across the
    // short schedule (standard "clip_denoised" practice).
    const float ab = schedule_.alpha_bar(t);
    const float sqrt_ab = std::sqrt(ab);
    const float sqrt_1mab = std::sqrt(1.0f - ab);
    const float c0 = schedule_.coef_x0(t);
    const float ct = schedule_.coef_xt(t);
    for (std::size_t i = 0; i < x.size(); ++i) {
      float x0 = (x[i] - sqrt_1mab * eps[i]) / sqrt_ab;
      x0 = std::min(3.0f, std::max(-3.0f, x0));  // data coords lie in [-sqrt(d), sqrt(d)]
      x[i] = c0 * x0 + ct * x[i];
      if (t > 0) {
        x[i] += schedule_.sigma(t) * static_cast<float>(rng.next_gaussian());
      }
    }
  }
  return x;
}

std::vector<float> DiffusionModel::predict_noise(
    const std::vector<float>& x_flat, int t) {
  const int L = cfg_.seq_len, d = cfg_.embed_dim;
  nn::NoGradGuard no_grad;  // pure inference: skip the autograd graph
  Tensor x = Tensor::from_data({1, d, L}, to_channel_layout(x_flat, L, d));
  Tensor eps = unet_->forward(x, {t});
  std::vector<float> out(eps.data().size());
  from_channel_layout_into(eps.data().data(), L, d, out.data());
  return out;
}

std::vector<std::vector<float>> DiffusionModel::predict_noise_batch(
    const std::vector<std::vector<float>>& xs, int t) {
  if (xs.empty()) return {};
  const int L = cfg_.seq_len, d = cfg_.embed_dim;
  const int R = static_cast<int>(xs.size());
  const std::size_t per = static_cast<std::size_t>(d) * L;
  nn::NoGradGuard no_grad;  // pure inference: skip the autograd graph
  Tensor x = Tensor::zeros({R, d, L});
  for (int r = 0; r < R; ++r) {
    if (xs[r].size() != per) {
      throw std::invalid_argument("predict_noise_batch: bad latent size");
    }
    to_channel_layout_into(xs[r].data(), L, d, x.data().data() + r * per);
  }
  Tensor eps = unet_->forward(x, std::vector<int>(xs.size(), t));
  std::vector<std::vector<float>> out(xs.size(),
                                      std::vector<float>(per));
  for (int r = 0; r < R; ++r) {
    from_channel_layout_into(eps.data().data() + r * per, L, d,
                             out[r].data());
  }
  return out;
}

}  // namespace clo::models
