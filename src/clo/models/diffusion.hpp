#pragma once
// DDPM diffusion model over sequence embeddings (Section III-C): a noise
// schedule and a 1-D U-Net denoiser eps_theta(x_t, t). Training follows
// Algorithm 1 (noise-prediction MSE, Eq. 10); the denoiser then drives
// both plain generation (Eq. 7) and the paper's guided optimization
// (Eq. 13, implemented in clo/core/optimizer).
//
// Note: the paper's Eq. 7 writes alpha_bar_t = sum alpha_s, a typo for the
// standard product form (Ho et al. [18]); we use the product.

#include <cmath>
#include <memory>
#include <vector>

#include "clo/nn/modules.hpp"
#include "clo/util/cancel.hpp"
#include "clo/util/rng.hpp"

namespace clo::models {

/// Precomputed beta/alpha tables for T steps (linear beta schedule).
class DdpmSchedule {
 public:
  DdpmSchedule(int num_steps, float beta_start = 1e-4f, float beta_end = 0.02f);

  int num_steps() const { return T_; }
  float beta(int t) const { return beta_[t]; }
  float alpha(int t) const { return alpha_[t]; }
  float alpha_bar(int t) const { return alpha_bar_[t]; }
  /// alpha_bar at t-1 (1 for t == 0).
  float alpha_bar_prev(int t) const { return t == 0 ? 1.0f : alpha_bar_[t - 1]; }
  /// Posterior std sigma_t = sqrt(beta~_t) (the tighter DDPM variance,
  /// important for short schedules).
  float sigma(int t) const { return sigma_[t]; }

  /// Posterior q(x_{t-1} | x_t, x0) mean coefficients:
  /// mean = coef_x0(t) * x0 + coef_xt(t) * x_t.
  float coef_x0(int t) const {
    return std::sqrt(alpha_bar_prev(t)) * beta_[t] / (1.0f - alpha_bar_[t]);
  }
  float coef_xt(int t) const {
    return std::sqrt(alpha_[t]) * (1.0f - alpha_bar_prev(t)) /
           (1.0f - alpha_bar_[t]);
  }

 private:
  int T_;
  std::vector<float> beta_, alpha_, alpha_bar_, sigma_;
};

struct DiffusionConfig {
  int seq_len = 20;       ///< L (must be divisible by 4 for the U-Net)
  int embed_dim = 8;      ///< d = channels
  int channels = 32;      ///< U-Net base width
  int time_dim = 32;      ///< timestep embedding width
  int num_steps = 500;    ///< T
};

/// 1-D U-Net noise predictor with FiLM-style timestep conditioning.
class DiffusionUNet : public nn::Module {
 public:
  DiffusionUNet(const DiffusionConfig& cfg, clo::Rng& rng);

  /// x: [B, d, L]; t: one timestep per batch row. Returns eps [B, d, L].
  nn::Tensor forward(const nn::Tensor& x, const std::vector<int>& t);

  std::vector<nn::Tensor> parameters() override;
  const DiffusionConfig& config() const { return cfg_; }

 private:
  DiffusionConfig cfg_;
  std::unique_ptr<nn::Linear> time1_, time2_;          // temb MLP
  std::unique_ptr<nn::Linear> film_in_, film_mid_;     // temb -> channel bias
  std::unique_ptr<nn::Conv1dLayer> in_conv_;
  std::unique_ptr<nn::Conv1dLayer> down1_, down2_, mid_;
  std::unique_ptr<nn::Conv1dLayer> up1_, up2_, out_conv_;
};

/// The diffusion model bundle: schedule + denoiser + training (Alg. 1) and
/// ancestral sampling (Eq. 7).
class DiffusionModel {
 public:
  DiffusionModel(const DiffusionConfig& cfg, clo::Rng& rng);

  const DdpmSchedule& schedule() const { return schedule_; }
  DiffusionUNet& unet() { return *unet_; }
  const DiffusionConfig& config() const { return cfg_; }

  struct TrainStats {
    int iterations = 0;
    double final_loss = 0.0;
    /// Smoothed loss sampled ~100 times across training (last iteration
    /// always included) — the loss-curve series surfaced by run reports.
    std::vector<double> loss_curve;
    /// Divergence recoveries: times a non-finite iteration loss triggered
    /// a rollback to the last good weights plus an LR halving. Training
    /// throws after kMaxLrBackoffs of them.
    int lr_backoffs = 0;
  };

  /// Divergence recoveries allowed before train() gives up (matches the
  /// surrogate trainer's core::kMaxLrBackoffs policy).
  static constexpr int kMaxLrBackoffs = 6;

  /// Algorithm 1: train the denoiser on N flattened [L*d] sequences.
  /// `cancel` is polled once per iteration; a fired token aborts with
  /// util::CancelledError.
  TrainStats train(const std::vector<std::vector<float>>& data,
                   int iterations, int batch_size, float lr, clo::Rng& rng,
                   const util::CancelToken* cancel = nullptr);

  /// Unguided ancestral sampling (Eq. 7): returns a flattened [L*d] latent.
  std::vector<float> sample(clo::Rng& rng);

  /// One denoiser evaluation on a single flattened latent (no grad).
  std::vector<float> predict_noise(const std::vector<float>& x_flat, int t);

  /// One denoiser evaluation on R stacked flattened latents (no grad):
  /// a single [R, d, L] U-Net forward shared by every restart of the
  /// batched optimizer. Row r of the result is bit-identical to
  /// predict_noise(xs[r], t) — no op in the U-Net mixes batch rows.
  std::vector<std::vector<float>> predict_noise_batch(
      const std::vector<std::vector<float>>& xs, int t);

 private:
  DiffusionConfig cfg_;
  DdpmSchedule schedule_;
  std::unique_ptr<DiffusionUNet> unet_;
};

/// Layout helpers between flattened [L*d] (position-major, as produced by
/// TransformEmbedding::embed) and the U-Net's [1, d, L] channel layout.
std::vector<float> to_channel_layout(const std::vector<float>& flat, int L,
                                     int d);
std::vector<float> from_channel_layout(const std::vector<float>& chan, int L,
                                       int d);

/// Allocation-free variants writing into caller-provided [d*L] storage —
/// the building blocks for batched [R, d, L] transposes (each batch row is
/// transposed independently into its slice of one contiguous buffer).
void to_channel_layout_into(const float* flat, int L, int d, float* chan);
void from_channel_layout_into(const float* chan, int L, int d, float* flat);

}  // namespace clo::models
