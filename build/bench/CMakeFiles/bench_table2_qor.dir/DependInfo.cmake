
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_qor.cpp" "bench/CMakeFiles/bench_table2_qor.dir/bench_table2_qor.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_qor.dir/bench_table2_qor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clo/baselines/CMakeFiles/clo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/core/CMakeFiles/clo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/models/CMakeFiles/clo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/nn/CMakeFiles/clo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/circuits/CMakeFiles/clo_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/techmap/CMakeFiles/clo_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/opt/CMakeFiles/clo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/aig/CMakeFiles/clo_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/util/CMakeFiles/clo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
