file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tsne.dir/bench_fig7_tsne.cpp.o"
  "CMakeFiles/bench_fig7_tsne.dir/bench_fig7_tsne.cpp.o.d"
  "bench_fig7_tsne"
  "bench_fig7_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
