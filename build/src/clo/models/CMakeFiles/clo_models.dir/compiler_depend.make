# Empty compiler generated dependencies file for clo_models.
# This may be replaced when dependencies are built.
