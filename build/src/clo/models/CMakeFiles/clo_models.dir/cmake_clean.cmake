file(REMOVE_RECURSE
  "CMakeFiles/clo_models.dir/diffusion.cpp.o"
  "CMakeFiles/clo_models.dir/diffusion.cpp.o.d"
  "CMakeFiles/clo_models.dir/embedding.cpp.o"
  "CMakeFiles/clo_models.dir/embedding.cpp.o.d"
  "CMakeFiles/clo_models.dir/surrogate.cpp.o"
  "CMakeFiles/clo_models.dir/surrogate.cpp.o.d"
  "libclo_models.a"
  "libclo_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
