file(REMOVE_RECURSE
  "libclo_models.a"
)
