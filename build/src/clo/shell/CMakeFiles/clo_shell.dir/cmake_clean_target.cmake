file(REMOVE_RECURSE
  "libclo_shell.a"
)
