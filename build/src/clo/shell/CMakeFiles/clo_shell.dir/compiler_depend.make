# Empty compiler generated dependencies file for clo_shell.
# This may be replaced when dependencies are built.
