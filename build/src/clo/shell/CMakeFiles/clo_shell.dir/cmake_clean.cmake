file(REMOVE_RECURSE
  "CMakeFiles/clo_shell.dir/shell.cpp.o"
  "CMakeFiles/clo_shell.dir/shell.cpp.o.d"
  "libclo_shell.a"
  "libclo_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
