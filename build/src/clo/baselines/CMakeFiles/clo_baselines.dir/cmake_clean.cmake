file(REMOVE_RECURSE
  "CMakeFiles/clo_baselines.dir/abcrl.cpp.o"
  "CMakeFiles/clo_baselines.dir/abcrl.cpp.o.d"
  "CMakeFiles/clo_baselines.dir/baseline.cpp.o"
  "CMakeFiles/clo_baselines.dir/baseline.cpp.o.d"
  "CMakeFiles/clo_baselines.dir/boils.cpp.o"
  "CMakeFiles/clo_baselines.dir/boils.cpp.o.d"
  "CMakeFiles/clo_baselines.dir/drills.cpp.o"
  "CMakeFiles/clo_baselines.dir/drills.cpp.o.d"
  "CMakeFiles/clo_baselines.dir/flowtune.cpp.o"
  "CMakeFiles/clo_baselines.dir/flowtune.cpp.o.d"
  "libclo_baselines.a"
  "libclo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
