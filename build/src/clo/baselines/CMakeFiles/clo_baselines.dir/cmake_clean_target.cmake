file(REMOVE_RECURSE
  "libclo_baselines.a"
)
