# Empty dependencies file for clo_baselines.
# This may be replaced when dependencies are built.
