file(REMOVE_RECURSE
  "CMakeFiles/clo_circuits.dir/generators.cpp.o"
  "CMakeFiles/clo_circuits.dir/generators.cpp.o.d"
  "CMakeFiles/clo_circuits.dir/wordlevel.cpp.o"
  "CMakeFiles/clo_circuits.dir/wordlevel.cpp.o.d"
  "libclo_circuits.a"
  "libclo_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
