# Empty dependencies file for clo_circuits.
# This may be replaced when dependencies are built.
