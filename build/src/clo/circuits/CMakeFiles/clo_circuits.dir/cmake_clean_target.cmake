file(REMOVE_RECURSE
  "libclo_circuits.a"
)
