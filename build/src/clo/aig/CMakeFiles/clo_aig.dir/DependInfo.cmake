
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clo/aig/aig.cpp" "src/clo/aig/CMakeFiles/clo_aig.dir/aig.cpp.o" "gcc" "src/clo/aig/CMakeFiles/clo_aig.dir/aig.cpp.o.d"
  "/root/repo/src/clo/aig/cuts.cpp" "src/clo/aig/CMakeFiles/clo_aig.dir/cuts.cpp.o" "gcc" "src/clo/aig/CMakeFiles/clo_aig.dir/cuts.cpp.o.d"
  "/root/repo/src/clo/aig/io.cpp" "src/clo/aig/CMakeFiles/clo_aig.dir/io.cpp.o" "gcc" "src/clo/aig/CMakeFiles/clo_aig.dir/io.cpp.o.d"
  "/root/repo/src/clo/aig/simulate.cpp" "src/clo/aig/CMakeFiles/clo_aig.dir/simulate.cpp.o" "gcc" "src/clo/aig/CMakeFiles/clo_aig.dir/simulate.cpp.o.d"
  "/root/repo/src/clo/aig/truth.cpp" "src/clo/aig/CMakeFiles/clo_aig.dir/truth.cpp.o" "gcc" "src/clo/aig/CMakeFiles/clo_aig.dir/truth.cpp.o.d"
  "/root/repo/src/clo/aig/window.cpp" "src/clo/aig/CMakeFiles/clo_aig.dir/window.cpp.o" "gcc" "src/clo/aig/CMakeFiles/clo_aig.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clo/util/CMakeFiles/clo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
