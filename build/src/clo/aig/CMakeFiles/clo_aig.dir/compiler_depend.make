# Empty compiler generated dependencies file for clo_aig.
# This may be replaced when dependencies are built.
