file(REMOVE_RECURSE
  "libclo_aig.a"
)
