file(REMOVE_RECURSE
  "CMakeFiles/clo_aig.dir/aig.cpp.o"
  "CMakeFiles/clo_aig.dir/aig.cpp.o.d"
  "CMakeFiles/clo_aig.dir/cuts.cpp.o"
  "CMakeFiles/clo_aig.dir/cuts.cpp.o.d"
  "CMakeFiles/clo_aig.dir/io.cpp.o"
  "CMakeFiles/clo_aig.dir/io.cpp.o.d"
  "CMakeFiles/clo_aig.dir/simulate.cpp.o"
  "CMakeFiles/clo_aig.dir/simulate.cpp.o.d"
  "CMakeFiles/clo_aig.dir/truth.cpp.o"
  "CMakeFiles/clo_aig.dir/truth.cpp.o.d"
  "CMakeFiles/clo_aig.dir/window.cpp.o"
  "CMakeFiles/clo_aig.dir/window.cpp.o.d"
  "libclo_aig.a"
  "libclo_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
