
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clo/techmap/cell_library.cpp" "src/clo/techmap/CMakeFiles/clo_techmap.dir/cell_library.cpp.o" "gcc" "src/clo/techmap/CMakeFiles/clo_techmap.dir/cell_library.cpp.o.d"
  "/root/repo/src/clo/techmap/tech_map.cpp" "src/clo/techmap/CMakeFiles/clo_techmap.dir/tech_map.cpp.o" "gcc" "src/clo/techmap/CMakeFiles/clo_techmap.dir/tech_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clo/aig/CMakeFiles/clo_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/util/CMakeFiles/clo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
