# Empty compiler generated dependencies file for clo_techmap.
# This may be replaced when dependencies are built.
