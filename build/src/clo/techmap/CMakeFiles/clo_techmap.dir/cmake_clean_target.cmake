file(REMOVE_RECURSE
  "libclo_techmap.a"
)
