file(REMOVE_RECURSE
  "CMakeFiles/clo_techmap.dir/cell_library.cpp.o"
  "CMakeFiles/clo_techmap.dir/cell_library.cpp.o.d"
  "CMakeFiles/clo_techmap.dir/tech_map.cpp.o"
  "CMakeFiles/clo_techmap.dir/tech_map.cpp.o.d"
  "libclo_techmap.a"
  "libclo_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
