# Empty compiler generated dependencies file for clo_util.
# This may be replaced when dependencies are built.
