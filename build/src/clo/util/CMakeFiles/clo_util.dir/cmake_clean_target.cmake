file(REMOVE_RECURSE
  "libclo_util.a"
)
