file(REMOVE_RECURSE
  "CMakeFiles/clo_util.dir/cli.cpp.o"
  "CMakeFiles/clo_util.dir/cli.cpp.o.d"
  "CMakeFiles/clo_util.dir/csv.cpp.o"
  "CMakeFiles/clo_util.dir/csv.cpp.o.d"
  "CMakeFiles/clo_util.dir/log.cpp.o"
  "CMakeFiles/clo_util.dir/log.cpp.o.d"
  "CMakeFiles/clo_util.dir/rng.cpp.o"
  "CMakeFiles/clo_util.dir/rng.cpp.o.d"
  "CMakeFiles/clo_util.dir/stats.cpp.o"
  "CMakeFiles/clo_util.dir/stats.cpp.o.d"
  "libclo_util.a"
  "libclo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
