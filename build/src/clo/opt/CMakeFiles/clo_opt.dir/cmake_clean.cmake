file(REMOVE_RECURSE
  "CMakeFiles/clo_opt.dir/balance.cpp.o"
  "CMakeFiles/clo_opt.dir/balance.cpp.o.d"
  "CMakeFiles/clo_opt.dir/flows.cpp.o"
  "CMakeFiles/clo_opt.dir/flows.cpp.o.d"
  "CMakeFiles/clo_opt.dir/mini_aig.cpp.o"
  "CMakeFiles/clo_opt.dir/mini_aig.cpp.o.d"
  "CMakeFiles/clo_opt.dir/refactor.cpp.o"
  "CMakeFiles/clo_opt.dir/refactor.cpp.o.d"
  "CMakeFiles/clo_opt.dir/resub.cpp.o"
  "CMakeFiles/clo_opt.dir/resub.cpp.o.d"
  "CMakeFiles/clo_opt.dir/rewrite.cpp.o"
  "CMakeFiles/clo_opt.dir/rewrite.cpp.o.d"
  "CMakeFiles/clo_opt.dir/synthesize.cpp.o"
  "CMakeFiles/clo_opt.dir/synthesize.cpp.o.d"
  "CMakeFiles/clo_opt.dir/transform.cpp.o"
  "CMakeFiles/clo_opt.dir/transform.cpp.o.d"
  "libclo_opt.a"
  "libclo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
