file(REMOVE_RECURSE
  "libclo_opt.a"
)
