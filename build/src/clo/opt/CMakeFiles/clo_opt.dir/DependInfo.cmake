
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clo/opt/balance.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/balance.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/balance.cpp.o.d"
  "/root/repo/src/clo/opt/flows.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/flows.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/flows.cpp.o.d"
  "/root/repo/src/clo/opt/mini_aig.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/mini_aig.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/mini_aig.cpp.o.d"
  "/root/repo/src/clo/opt/refactor.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/refactor.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/refactor.cpp.o.d"
  "/root/repo/src/clo/opt/resub.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/resub.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/resub.cpp.o.d"
  "/root/repo/src/clo/opt/rewrite.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/rewrite.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/rewrite.cpp.o.d"
  "/root/repo/src/clo/opt/synthesize.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/synthesize.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/synthesize.cpp.o.d"
  "/root/repo/src/clo/opt/transform.cpp" "src/clo/opt/CMakeFiles/clo_opt.dir/transform.cpp.o" "gcc" "src/clo/opt/CMakeFiles/clo_opt.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clo/aig/CMakeFiles/clo_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/util/CMakeFiles/clo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
