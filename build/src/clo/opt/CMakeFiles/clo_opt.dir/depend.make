# Empty dependencies file for clo_opt.
# This may be replaced when dependencies are built.
