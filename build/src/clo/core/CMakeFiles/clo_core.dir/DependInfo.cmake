
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clo/core/dataset.cpp" "src/clo/core/CMakeFiles/clo_core.dir/dataset.cpp.o" "gcc" "src/clo/core/CMakeFiles/clo_core.dir/dataset.cpp.o.d"
  "/root/repo/src/clo/core/evaluator.cpp" "src/clo/core/CMakeFiles/clo_core.dir/evaluator.cpp.o" "gcc" "src/clo/core/CMakeFiles/clo_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/clo/core/optimizer.cpp" "src/clo/core/CMakeFiles/clo_core.dir/optimizer.cpp.o" "gcc" "src/clo/core/CMakeFiles/clo_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/clo/core/pipeline.cpp" "src/clo/core/CMakeFiles/clo_core.dir/pipeline.cpp.o" "gcc" "src/clo/core/CMakeFiles/clo_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/clo/core/trainer.cpp" "src/clo/core/CMakeFiles/clo_core.dir/trainer.cpp.o" "gcc" "src/clo/core/CMakeFiles/clo_core.dir/trainer.cpp.o.d"
  "/root/repo/src/clo/core/tsne.cpp" "src/clo/core/CMakeFiles/clo_core.dir/tsne.cpp.o" "gcc" "src/clo/core/CMakeFiles/clo_core.dir/tsne.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clo/models/CMakeFiles/clo_models.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/nn/CMakeFiles/clo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/techmap/CMakeFiles/clo_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/opt/CMakeFiles/clo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/aig/CMakeFiles/clo_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/clo/util/CMakeFiles/clo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
