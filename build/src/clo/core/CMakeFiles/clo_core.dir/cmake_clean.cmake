file(REMOVE_RECURSE
  "CMakeFiles/clo_core.dir/dataset.cpp.o"
  "CMakeFiles/clo_core.dir/dataset.cpp.o.d"
  "CMakeFiles/clo_core.dir/evaluator.cpp.o"
  "CMakeFiles/clo_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/clo_core.dir/optimizer.cpp.o"
  "CMakeFiles/clo_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/clo_core.dir/pipeline.cpp.o"
  "CMakeFiles/clo_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/clo_core.dir/trainer.cpp.o"
  "CMakeFiles/clo_core.dir/trainer.cpp.o.d"
  "CMakeFiles/clo_core.dir/tsne.cpp.o"
  "CMakeFiles/clo_core.dir/tsne.cpp.o.d"
  "libclo_core.a"
  "libclo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
