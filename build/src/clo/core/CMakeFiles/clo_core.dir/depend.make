# Empty dependencies file for clo_core.
# This may be replaced when dependencies are built.
