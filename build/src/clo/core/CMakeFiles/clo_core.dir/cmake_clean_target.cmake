file(REMOVE_RECURSE
  "libclo_core.a"
)
