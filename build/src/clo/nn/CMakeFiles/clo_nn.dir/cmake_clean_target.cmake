file(REMOVE_RECURSE
  "libclo_nn.a"
)
