file(REMOVE_RECURSE
  "CMakeFiles/clo_nn.dir/modules.cpp.o"
  "CMakeFiles/clo_nn.dir/modules.cpp.o.d"
  "CMakeFiles/clo_nn.dir/ops.cpp.o"
  "CMakeFiles/clo_nn.dir/ops.cpp.o.d"
  "CMakeFiles/clo_nn.dir/optim.cpp.o"
  "CMakeFiles/clo_nn.dir/optim.cpp.o.d"
  "CMakeFiles/clo_nn.dir/serialize.cpp.o"
  "CMakeFiles/clo_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/clo_nn.dir/tensor.cpp.o"
  "CMakeFiles/clo_nn.dir/tensor.cpp.o.d"
  "libclo_nn.a"
  "libclo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
