# Empty dependencies file for clo_nn.
# This may be replaced when dependencies are built.
