file(REMOVE_RECURSE
  "CMakeFiles/clo.dir/clo.cpp.o"
  "CMakeFiles/clo.dir/clo.cpp.o.d"
  "clo"
  "clo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
