# Empty dependencies file for clo.
# This may be replaced when dependencies are built.
