# Empty dependencies file for test_nn_autograd.
# This may be replaced when dependencies are built.
