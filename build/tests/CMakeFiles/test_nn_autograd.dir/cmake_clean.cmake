file(REMOVE_RECURSE
  "CMakeFiles/test_nn_autograd.dir/test_nn_autograd.cpp.o"
  "CMakeFiles/test_nn_autograd.dir/test_nn_autograd.cpp.o.d"
  "test_nn_autograd"
  "test_nn_autograd.pdb"
  "test_nn_autograd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
