# Empty dependencies file for test_cuts_windows.
# This may be replaced when dependencies are built.
