file(REMOVE_RECURSE
  "CMakeFiles/test_cuts_windows.dir/test_cuts_windows.cpp.o"
  "CMakeFiles/test_cuts_windows.dir/test_cuts_windows.cpp.o.d"
  "test_cuts_windows"
  "test_cuts_windows.pdb"
  "test_cuts_windows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuts_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
