# Empty dependencies file for test_truth.
# This may be replaced when dependencies are built.
