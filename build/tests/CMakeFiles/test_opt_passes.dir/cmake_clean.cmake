file(REMOVE_RECURSE
  "CMakeFiles/test_opt_passes.dir/test_opt_passes.cpp.o"
  "CMakeFiles/test_opt_passes.dir/test_opt_passes.cpp.o.d"
  "test_opt_passes"
  "test_opt_passes.pdb"
  "test_opt_passes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
