file(REMOVE_RECURSE
  "CMakeFiles/test_shell.dir/test_shell.cpp.o"
  "CMakeFiles/test_shell.dir/test_shell.cpp.o.d"
  "test_shell"
  "test_shell.pdb"
  "test_shell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
