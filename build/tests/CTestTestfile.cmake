# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_aig[1]_include.cmake")
include("/root/repo/build/tests/test_truth[1]_include.cmake")
include("/root/repo/build/tests/test_cuts_windows[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_opt_passes[1]_include.cmake")
include("/root/repo/build/tests/test_techmap[1]_include.cmake")
include("/root/repo/build/tests/test_circuits[1]_include.cmake")
include("/root/repo/build/tests/test_nn_autograd[1]_include.cmake")
include("/root/repo/build/tests/test_nn_modules[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_diffusion[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_shell[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
