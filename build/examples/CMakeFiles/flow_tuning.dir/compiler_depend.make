# Empty compiler generated dependencies file for flow_tuning.
# This may be replaced when dependencies are built.
