file(REMOVE_RECURSE
  "CMakeFiles/flow_tuning.dir/flow_tuning.cpp.o"
  "CMakeFiles/flow_tuning.dir/flow_tuning.cpp.o.d"
  "flow_tuning"
  "flow_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
