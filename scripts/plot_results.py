#!/usr/bin/env python3
"""Plot the CSVs the bench binaries emit (matplotlib, optional dependency).

Usage:
    python3 scripts/plot_results.py <csv...>          # auto-detect by header
    python3 scripts/plot_results.py fig7_tsne.csv     # Fig. 7 scatter
    python3 scripts/plot_results.py fig5_runtime.csv  # Fig. 5 bars (log)

Each bench already prints its table to stdout; these plots mirror the
paper's figures for visual comparison.
"""
import csv
import sys
from collections import defaultdict


def load(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def plot_tsne(rows, path, plt):
    groups = defaultdict(lambda: ([], []))
    for r in rows:
        groups[r["label"]][0].append(float(r["x"]))
        groups[r["label"]][1].append(float(r["y"]))
    fig, ax = plt.subplots(figsize=(6, 5))
    for label, (xs, ys) in sorted(groups.items()):
        if label.startswith("embed_"):
            ax.scatter(xs, ys, s=18, alpha=0.6, label=label)
        elif "without" in label:
            ax.scatter(xs, ys, s=60, marker="x", c="red", label=label)
        else:
            ax.scatter(xs, ys, s=60, marker="*", c="black", label=label)
    ax.set_title("t-SNE of latents vs feasible embeddings (Fig. 7)")
    ax.legend(fontsize=6)
    out = path.replace(".csv", ".png")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print("wrote", out)


def plot_runtime(rows, path, plt):
    circuits = sorted({r["circuit"] for r in rows})
    methods = [m for m in ("DRiLLS", "abcRL", "BOiLS", "FlowTune", "Ours")]
    col = ("total_query_seconds"
           if "total_query_seconds" in rows[0] else "algorithm_seconds")
    fig, ax = plt.subplots(figsize=(7, 4))
    width = 0.15
    for mi, method in enumerate(methods):
        xs, ys = [], []
        for ci, circuit in enumerate(circuits):
            for r in rows:
                if r["circuit"] == circuit and r["method"] == method:
                    xs.append(ci + (mi - 2) * width)
                    ys.append(max(float(r[col]), 1e-4))
        ax.bar(xs, ys, width=width, label=method)
    ax.set_yscale("log")
    ax.set_xticks(range(len(circuits)))
    ax.set_xticklabels(circuits)
    ax.set_ylabel("seconds (log)")
    ax.set_title("Per-query optimization time (Fig. 5)")
    ax.legend(fontsize=7)
    out = path.replace(".csv", ".png")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print("wrote", out)


def plot_table2(rows, path, plt):
    circuits = sorted({r["circuit"] for r in rows})
    methods = ["Original", "DRiLLS", "abcRL", "BOiLS", "FlowTune", "Ours"]
    fig, axes = plt.subplots(1, 2, figsize=(11, 4))
    for ax, metric in zip(axes, ("area_um2", "delay_ps")):
        width = 0.13
        for mi, method in enumerate(methods):
            xs, ys = [], []
            for ci, circuit in enumerate(circuits):
                for r in rows:
                    if r["circuit"] == circuit and r["method"] == method:
                        xs.append(ci + (mi - 2.5) * width)
                        ys.append(float(r[metric]))
            ax.bar(xs, ys, width=width, label=method)
        ax.set_xticks(range(len(circuits)))
        ax.set_xticklabels(circuits, rotation=30)
        ax.set_title(metric)
    axes[0].legend(fontsize=6)
    out = path.replace(".csv", ".png")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print("wrote", out)


def plot_generic_sweep(rows, path, plt, xkey, ykey="best_score"):
    groups = defaultdict(lambda: ([], []))
    for r in rows:
        groups[r["sweep"]][0].append(r[xkey])
        groups[r["sweep"]][1].append(float(r[ykey]))
    fig, axes = plt.subplots(1, len(groups), figsize=(3 * len(groups), 3))
    if len(groups) == 1:
        axes = [axes]
    for ax, (sweep, (xs, ys)) in zip(axes, sorted(groups.items())):
        ax.plot(range(len(xs)), ys, marker="o")
        ax.set_xticks(range(len(xs)))
        ax.set_xticklabels(xs)
        ax.set_title(sweep)
    out = path.replace(".csv", ".png")
    fig.savefig(out, dpi=150, bbox_inches="tight")
    print("wrote", out)


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; the CSVs are plain text — any "
              "plotting tool works.")
        return 1
    for path in sys.argv[1:]:
        rows = load(path)
        if not rows:
            print(path, ": empty")
            continue
        header = set(rows[0])
        if {"label", "x", "y"} <= header:
            plot_tsne(rows, path, plt)
        elif "total_query_seconds" in header or "algorithm_seconds" in header:
            if "area_um2" in header:
                plot_table2(rows, path, plt)
            else:
                plot_runtime(rows, path, plt)
        elif {"sweep", "value"} <= header:
            plot_generic_sweep(rows, path, plt, "value")
        elif {"surrogate", "diffusion"} <= header:
            # fig6: grouped bars with/without diffusion
            fig, ax = plt.subplots(figsize=(6, 4))
            kinds = sorted({r["surrogate"] for r in rows})
            for di, diff in enumerate(("yes", "no")):
                xs, ys = [], []
                for ki, kind in enumerate(kinds):
                    for r in rows:
                        if r["surrogate"] == kind and r["diffusion"] == diff:
                            xs.append(ki + (di - 0.5) * 0.3)
                            ys.append(float(r["area_um2"]))
                ax.bar(xs, ys, width=0.3,
                       label=f"diffusion={diff}")
            ax.set_xticks(range(len(kinds)))
            ax.set_xticklabels(kinds)
            ax.set_ylabel("area um^2")
            ax.set_title("with vs without diffusion (Fig. 6)")
            ax.legend()
            out = path.replace(".csv", ".png")
            fig.savefig(out, dpi=150, bbox_inches="tight")
            print("wrote", out)
        else:
            print(path, ": unrecognized header", sorted(header))
    return 0


if __name__ == "__main__":
    sys.exit(main())
