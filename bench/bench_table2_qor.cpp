// Reproduces Table II: post-synthesis area and delay for every benchmark
// circuit under {Original, DRiLLS, abcRL, BOiLS, FlowTune, Ours}, with the
// arithmetic mean, geometric mean, and per-method ratio rows.
//
//   ./bench_table2_qor                    quick subset (seconds/method)
//   ./bench_table2_qor --full             all 31 circuits at paper scale
//   ./bench_table2_qor --circuits ctrl,c17 --budget 24 --dataset 150
//   Output: console table + table2_qor.csv (+ --bench-out JSON)
//
// --full is the paper-scale configuration the nightly job tracks: every
// circuit at full width (128-bit adder, 64x64 multiplier, ... — see
// circuits::make_benchmark), T=500 diffusion steps, and 30 restarts
// (each individually overridable with --steps/--restarts). --bench-out F
// additionally writes a machine-readable per-(circuit, method) record
// file ("clo.bench.table2.v1", BENCH_full.json in the nightly) whose
// entries carry the worker thread count and kernel dispatch target so
// clo_bench_diff only compares like against like.
//
// Telemetry (shared harness flags): --metrics-out F streams clo.metrics.v1
// JSONL while the bench runs (--metrics-interval-ms N), --metrics-port P
// serves live Prometheus text on 127.0.0.1:P, --profile-out F writes the
// clo.profile.v1 span profile on exit.

#include <cstdio>
#include <sstream>

#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/stats.hpp"
#include "harness.hpp"

namespace {

using namespace clo;

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  bench::ExperimentScale scale;
  scale.baseline_budget = args.get_int("budget", 16);
  scale.dataset_size = args.get_int("dataset", 200);
  // --full defaults to the paper's scale (T=500, 30 repeats); explicit
  // --steps/--restarts still win so partial-scale runs stay possible.
  scale.diffusion_steps = args.get_int("steps", full ? 500 : 60);
  scale.restarts = args.get_int("restarts", full ? 30 : 8);
  scale.surrogate = args.get("surrogate", "cnn");
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  scale.threads = args.get_int("threads", 0);
  const bench::ObsOptions obs_opts = bench::obs_from_args(args);

  std::vector<std::string> names = bench::circuit_selection(full);
  if (args.has("circuits")) names = split_csv_list(args.get("circuits", ""));

  const std::vector<std::string> methods = {"Original", "DRiLLS", "abcRL",
                                            "BOiLS", "FlowTune", "Ours"};
  // results[m] = per-circuit (area, delay).
  std::vector<std::vector<double>> area(methods.size()), delay(methods.size());

  ConsoleTable table({"Circuit", "Orig A", "Orig D", "DRiLLS A", "DRiLLS D",
                      "abcRL A", "abcRL D", "BOiLS A", "BOiLS D", "FlowT A",
                      "FlowT D", "Ours A", "Ours D"});
  CsvWriter csv({"circuit", "method", "area_um2", "delay_ps",
                 "algo_seconds", "training_seconds"});
  core::PipelineResult last_result;
  core::EvaluatorStats last_stats;

  obs::Json bench_rows = obs::Json::array();
  const std::string kernel_target = nn::kernel::active_target();
  const int resolved_threads =
      static_cast<int>(util::resolve_threads(scale.threads));

  for (const auto& name : names) {
    std::fprintf(stderr, "[table2] %s ...\n", name.c_str());
    // --full also selects the full-width circuit variants.
    const aig::Aig circuit = circuits::make_benchmark(name, full);
    std::vector<bench::MethodResult> row;
    {
      core::QorEvaluator ev(circuit);
      const auto q = ev.original();
      row.push_back({"Original", q.area_um2, q.delay_ps, 0.0, 0.0});
    }
    for (const char* m : {"drills", "abcrl", "boils", "flowtune"}) {
      row.push_back(bench::run_baseline_method(m, circuit, scale));
    }
    row.push_back(bench::run_ours(circuit, scale, &last_result, &last_stats));

    std::vector<std::string> cells{name};
    for (std::size_t m = 0; m < row.size(); ++m) {
      area[m].push_back(row[m].area);
      delay[m].push_back(row[m].delay);
      cells.push_back(fmt_double(row[m].area, 2));
      cells.push_back(fmt_double(row[m].delay, 2));
      csv.add_row({name, methods[m], fmt_double(row[m].area, 4),
                   fmt_double(row[m].delay, 4),
                   fmt_double(row[m].algorithm_seconds, 4),
                   fmt_double(row[m].training_seconds, 4)});
      obs::Json rec = obs::Json::object();
      rec["name"] = obs::Json(name + "/" + methods[m]);
      rec["circuit"] = obs::Json(name);
      rec["method"] = obs::Json(methods[m]);
      rec["area_um2"] = obs::Json(row[m].area);
      rec["delay_ps"] = obs::Json(row[m].delay);
      rec["seconds"] = obs::Json(row[m].algorithm_seconds);
      rec["training_seconds"] = obs::Json(row[m].training_seconds);
      rec["threads"] = obs::Json(static_cast<double>(resolved_threads));
      rec["target"] = obs::Json(kernel_target);
      bench_rows.push_back(std::move(rec));
    }
    table.add_row(cells);
  }

  // Summary rows (mean / geomean / ratios vs Ours), like the paper.
  table.add_separator();
  auto add_summary = [&](const std::string& label, auto reduce) {
    std::vector<std::string> cells{label};
    for (std::size_t m = 0; m < methods.size(); ++m) {
      cells.push_back(fmt_double(reduce(area[m]), 2));
      cells.push_back(fmt_double(reduce(delay[m]), 2));
    }
    table.add_row(cells);
  };
  add_summary("Mean", [](const std::vector<double>& v) { return mean(v); });
  add_summary("Geomean", [](const std::vector<double>& v) { return geomean(v); });
  {
    std::vector<std::string> cells{"Ratio(geo)"};
    const double ga = geomean(area.back());
    const double gd = geomean(delay.back());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      cells.push_back(fmt_double(geomean(area[m]) / ga, 3));
      cells.push_back(fmt_double(geomean(delay[m]) / gd, 3));
    }
    table.add_row(cells);
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper's Table II shape to check: Ours has the lowest "
              "geomean area and delay (all ratios >= 1.000).\n");
  const std::string out = args.get("out", "table2_qor.csv");
  if (csv.write(out)) std::printf("wrote %s\n", out.c_str());
  const std::string bench_out = args.get("bench-out", "");
  if (!bench_out.empty()) {
    obs::Json doc = obs::Json::object();
    doc["schema"] = obs::Json(std::string("clo.bench.table2.v1"));
    doc["full"] = obs::Json(full);
    doc["diffusion_steps"] = obs::Json(
        static_cast<double>(scale.diffusion_steps));
    doc["restarts"] = obs::Json(static_cast<double>(scale.restarts));
    doc["threads"] = obs::Json(static_cast<double>(resolved_threads));
    doc["kernel_target"] = obs::Json(kernel_target);
    doc["results"] = std::move(bench_rows);
    if (obs::write_json_file(bench_out, doc)) {
      std::printf("wrote %s\n", bench_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", bench_out.c_str());
    }
  }
  obs::Json report = core::pipeline_report(last_result, last_stats);
  report["bench"] = obs::Json(std::string("table2_qor"));
  bench::obs_finish(obs_opts, std::move(report));
  return 0;
}
