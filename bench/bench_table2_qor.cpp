// Reproduces Table II: post-synthesis area and delay for every benchmark
// circuit under {Original, DRiLLS, abcRL, BOiLS, FlowTune, Ours}, with the
// arithmetic mean, geometric mean, and per-method ratio rows.
//
//   ./bench_table2_qor                    quick subset (seconds/method)
//   ./bench_table2_qor --full             all 31 circuits (long)
//   ./bench_table2_qor --circuits ctrl,c17 --budget 24 --dataset 150
//   Output: console table + table2_qor.csv
//
// Telemetry (shared harness flags): --metrics-out F streams clo.metrics.v1
// JSONL while the bench runs (--metrics-interval-ms N), --metrics-port P
// serves live Prometheus text on 127.0.0.1:P, --profile-out F writes the
// clo.profile.v1 span profile on exit.

#include <cstdio>
#include <sstream>

#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/stats.hpp"
#include "harness.hpp"

namespace {

using namespace clo;

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  bench::ExperimentScale scale;
  scale.baseline_budget = args.get_int("budget", 16);
  scale.dataset_size = args.get_int("dataset", 200);
  scale.diffusion_steps = args.get_int("steps", 60);
  scale.restarts = args.get_int("restarts", 8);
  scale.surrogate = args.get("surrogate", "cnn");
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  scale.threads = args.get_int("threads", 0);
  const bench::ObsOptions obs_opts = bench::obs_from_args(args);

  std::vector<std::string> names = bench::circuit_selection(args.has("full"));
  if (args.has("circuits")) names = split_csv_list(args.get("circuits", ""));

  const std::vector<std::string> methods = {"Original", "DRiLLS", "abcRL",
                                            "BOiLS", "FlowTune", "Ours"};
  // results[m] = per-circuit (area, delay).
  std::vector<std::vector<double>> area(methods.size()), delay(methods.size());

  ConsoleTable table({"Circuit", "Orig A", "Orig D", "DRiLLS A", "DRiLLS D",
                      "abcRL A", "abcRL D", "BOiLS A", "BOiLS D", "FlowT A",
                      "FlowT D", "Ours A", "Ours D"});
  CsvWriter csv({"circuit", "method", "area_um2", "delay_ps",
                 "algo_seconds", "training_seconds"});
  core::PipelineResult last_result;
  core::EvaluatorStats last_stats;

  for (const auto& name : names) {
    std::fprintf(stderr, "[table2] %s ...\n", name.c_str());
    const aig::Aig circuit = circuits::make_benchmark(name);
    std::vector<bench::MethodResult> row;
    {
      core::QorEvaluator ev(circuit);
      const auto q = ev.original();
      row.push_back({"Original", q.area_um2, q.delay_ps, 0.0, 0.0});
    }
    for (const char* m : {"drills", "abcrl", "boils", "flowtune"}) {
      row.push_back(bench::run_baseline_method(m, circuit, scale));
    }
    row.push_back(bench::run_ours(circuit, scale, &last_result, &last_stats));

    std::vector<std::string> cells{name};
    for (std::size_t m = 0; m < row.size(); ++m) {
      area[m].push_back(row[m].area);
      delay[m].push_back(row[m].delay);
      cells.push_back(fmt_double(row[m].area, 2));
      cells.push_back(fmt_double(row[m].delay, 2));
      csv.add_row({name, methods[m], fmt_double(row[m].area, 4),
                   fmt_double(row[m].delay, 4),
                   fmt_double(row[m].algorithm_seconds, 4),
                   fmt_double(row[m].training_seconds, 4)});
    }
    table.add_row(cells);
  }

  // Summary rows (mean / geomean / ratios vs Ours), like the paper.
  table.add_separator();
  auto add_summary = [&](const std::string& label, auto reduce) {
    std::vector<std::string> cells{label};
    for (std::size_t m = 0; m < methods.size(); ++m) {
      cells.push_back(fmt_double(reduce(area[m]), 2));
      cells.push_back(fmt_double(reduce(delay[m]), 2));
    }
    table.add_row(cells);
  };
  add_summary("Mean", [](const std::vector<double>& v) { return mean(v); });
  add_summary("Geomean", [](const std::vector<double>& v) { return geomean(v); });
  {
    std::vector<std::string> cells{"Ratio(geo)"};
    const double ga = geomean(area.back());
    const double gd = geomean(delay.back());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      cells.push_back(fmt_double(geomean(area[m]) / ga, 3));
      cells.push_back(fmt_double(geomean(delay[m]) / gd, 3));
    }
    table.add_row(cells);
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper's Table II shape to check: Ours has the lowest "
              "geomean area and delay (all ratios >= 1.000).\n");
  const std::string out = args.get("out", "table2_qor.csv");
  if (csv.write(out)) std::printf("wrote %s\n", out.c_str());
  obs::Json report = core::pipeline_report(last_result, last_stats);
  report["bench"] = obs::Json(std::string("table2_qor"));
  bench::obs_finish(obs_opts, std::move(report));
  return 0;
}
