// Reproduces Fig. 5: per-query optimization runtime. Two accountings are
// reported:
//
//  * total query time — everything a user waits for when asking "give me a
//    good sequence for this circuit": for the baselines this includes the
//    real synthesis evaluations their search loops interleave; for ours it
//    is the latent-space optimization only (training is the paper's
//    "one-time effort", reported separately). This is where the paper's
//    structural claim lives: the continuous optimizer makes *zero*
//    synthesis calls at query time, so it wins by the cost of the
//    baselines' synthesis budget. The headline shape (Ours fastest,
//    5x-130x) is asserted on this column.
//
//  * algorithm-only time — the paper's literal Fig. 5 metric (ABC time
//    subtracted). NOTE: the paper compares its method against the
//    baselines' original Python/TensorFlow implementations; re-implemented
//    in the same C++ stack, the small RL/BO models are no longer the
//    bottleneck, so this column's ordering is not expected to match the
//    paper (see EXPERIMENTS.md). abcRL's per-step graph extraction still
//    makes it the slowest baseline here, as in the paper.
//
//   ./bench_fig5_runtime [--circuits ctrl,router,c432] [--budget 60]
//                        [--no-batch]
//   Output: console table + fig5_runtime.csv
//
// --no-batch runs the per-restart optimizer fallback instead of the
// batched lockstep path; both retrieve identical sequences, so comparing
// the two runs isolates the batching speedup on the "Ours" column.
//
// Telemetry (shared harness flags): --metrics-out F streams clo.metrics.v1
// JSONL while the bench runs (--metrics-interval-ms N), --metrics-port P
// serves live Prometheus text on 127.0.0.1:P, --profile-out F writes the
// clo.profile.v1 span profile on exit.

#include <cstdio>
#include <sstream>

#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/stats.hpp"
#include "harness.hpp"

namespace {

struct Timing {
  double algo = 0.0;
  double total = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  bench::ExperimentScale scale;
  scale.baseline_budget = args.get_int("budget", 60);
  scale.dataset_size = args.get_int("dataset", 200);
  scale.diffusion_steps = args.get_int("steps", 60);
  scale.restarts = args.get_int("restarts", 8);
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
  scale.threads = args.get_int("threads", 0);
  scale.batch = !args.has("no-batch");
  const bench::ObsOptions obs_opts = bench::obs_from_args(args);

  std::vector<std::string> names = {"ctrl", "router", "c432"};
  if (args.has("full")) names = bench::circuit_selection(true);
  if (args.has("circuits")) {
    names.clear();
    std::stringstream ss(args.get("circuits", ""));
    std::string tok;
    while (std::getline(ss, tok, ',')) names.push_back(tok);
  }
  const std::vector<std::string> methods = {"drills", "abcrl", "boils",
                                            "flowtune"};

  ConsoleTable table({"Circuit", "DRiLLS", "abcRL", "BOiLS", "FlowTune",
                      "Ours", "speedup(worst)", "speedup(best)"});
  ConsoleTable algo_table({"Circuit", "DRiLLS", "abcRL", "BOiLS", "FlowTune",
                           "Ours"});
  CsvWriter csv({"circuit", "method", "algorithm_seconds",
                 "total_query_seconds"});
  std::vector<double> speedups;
  bool abcrl_always_slowest_baseline = true;
  core::PipelineResult last_result;
  core::EvaluatorStats last_stats;

  for (const auto& name : names) {
    std::fprintf(stderr, "[fig5] %s ...\n", name.c_str());
    const aig::Aig circuit = circuits::make_benchmark(name);
    std::vector<Timing> timings;
    for (const auto& m : methods) {
      // Measure wall time around the whole optimize call = query total.
      Stopwatch watch;
      watch.start();
      const auto r = bench::run_baseline_method(m, circuit, scale);
      watch.stop();
      timings.push_back({r.algorithm_seconds, watch.seconds()});
      csv.add_row({name, r.method, fmt_double(r.algorithm_seconds, 4),
                   fmt_double(watch.seconds(), 4)});
    }
    const auto ours = bench::run_ours(circuit, scale, &last_result,
                                      &last_stats);
    const double ours_s = std::max(ours.algorithm_seconds, 1e-6);
    csv.add_row({name, "Ours", fmt_double(ours_s, 4), fmt_double(ours_s, 4)});
    csv.add_row({name, "Ours-training(one-time)",
                 fmt_double(ours.training_seconds, 4),
                 fmt_double(ours.training_seconds, 4)});

    std::vector<double> totals, algos;
    for (const auto& t : timings) {
      totals.push_back(t.total);
      algos.push_back(t.algo);
    }
    if (max_of(algos) > algos[1] + 1e-12) {
      abcrl_always_slowest_baseline = false;  // index 1 = abcRL
    }
    speedups.push_back(min_of(totals) / ours_s);
    speedups.push_back(max_of(totals) / ours_s);
    table.add_row({name, fmt_double(timings[0].total, 2),
                   fmt_double(timings[1].total, 2),
                   fmt_double(timings[2].total, 2),
                   fmt_double(timings[3].total, 2), fmt_double(ours_s, 2),
                   fmt_double(max_of(totals) / ours_s, 1) + "x",
                   fmt_double(min_of(totals) / ours_s, 1) + "x"});
    algo_table.add_row({name, fmt_double(timings[0].algo, 3),
                        fmt_double(timings[1].algo, 3),
                        fmt_double(timings[2].algo, 3),
                        fmt_double(timings[3].algo, 3),
                        fmt_double(ours_s, 3)});
  }

  std::printf("Total per-query optimization time (seconds; baselines "
              "include the synthesis their loops require, ours needs "
              "none):\n%s\n",
              table.to_string().c_str());
  std::printf("Algorithm-only time (paper's literal metric; see header "
              "note):\n%s\n",
              algo_table.to_string().c_str());
  std::printf(
      "Paper's Fig. 5 shape to check: Ours fastest per query (paper: "
      "5x-130x) -> observed %.1fx .. %.1fx; abcRL slowest baseline "
      "(algorithm time): %s\n",
      min_of(speedups), max_of(speedups),
      abcrl_always_slowest_baseline ? "yes" : "NO");
  const std::string out = args.get("out", "fig5_runtime.csv");
  if (csv.write(out)) std::printf("wrote %s\n", out.c_str());
  // The report carries the last circuit's full pipeline breakdown (the
  // per-circuit numbers are in the CSV).
  obs::Json report = core::pipeline_report(last_result, last_stats);
  report["bench"] = obs::Json(std::string("fig5_runtime"));
  bench::obs_finish(obs_opts, std::move(report));
  return 0;
}
