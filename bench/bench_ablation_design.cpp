// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own Fig. 6 ablation): guidance strength ω, the guidance ramp,
// the number of denoising steps T, the restart count, and the training
// dataset size. One circuit, shared dataset where possible.
//
//   ./bench_ablation_design [--circuit cavlc] [--dataset 120]
//   Output: console tables + ablation_design.csv

#include <algorithm>
#include <cstdio>

#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/core/trainer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/stats.hpp"

namespace {

using namespace clo;

struct Setup {
  core::QorEvaluator* evaluator;
  models::TransformEmbedding* embedding;
  models::SurrogateModel* surrogate;
  core::Dataset* dataset;
};

/// Best weighted score over `restarts` runs of the optimizer.
double best_score(const Setup& s, models::DiffusionModel& diffusion,
                  const core::OptimizeParams& params, int restarts,
                  std::uint64_t seed, double* mean_disc = nullptr) {
  core::ContinuousOptimizer optimizer(*s.surrogate, diffusion, *s.embedding,
                                      params);
  clo::Rng rng(seed);
  double best = 1e300;
  double disc = 0.0;
  for (int r = 0; r < restarts; ++r) {
    const auto result = optimizer.run(rng);
    const auto q = s.evaluator->evaluate(result.sequence);
    const double score =
        0.5 * (q.area_um2 - s.dataset->area_mean) / s.dataset->area_std +
        0.5 * (q.delay_ps - s.dataset->delay_mean) / s.dataset->delay_std;
    best = std::min(best, score);
    disc += result.discrepancy / restarts;
  }
  if (mean_disc) *mean_disc = disc;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string circuit_name = args.get("circuit", "cavlc");
  const int dataset_size = args.get_int("dataset", 120);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  const aig::Aig circuit = circuits::make_benchmark(circuit_name);
  clo::Rng rng(seed);
  core::QorEvaluator evaluator(circuit);
  models::TransformEmbedding embedding(8, rng);
  std::fprintf(stderr, "[ablation] dataset (%d sequences on %s)...\n",
               dataset_size, circuit_name.c_str());
  auto dataset = core::generate_dataset(evaluator, dataset_size, 20, rng);
  models::SurrogateConfig scfg;
  auto surrogate = models::make_surrogate("cnn", circuit, scfg, rng);
  core::TrainConfig tcfg;
  const auto report =
      core::train_surrogate(*surrogate, embedding, dataset, tcfg, rng);
  std::printf("surrogate spearman: area %.3f delay %.3f\n",
              report.spearman_area, report.spearman_delay);

  std::vector<std::vector<float>> embedded;
  for (const auto& s : dataset.sequences) embedded.push_back(embedding.embed(s));

  models::DiffusionConfig dcfg;
  dcfg.num_steps = 60;
  models::DiffusionModel diffusion(dcfg, rng);
  std::fprintf(stderr, "[ablation] training diffusion (T=60)...\n");
  diffusion.train(embedded, 600, 16, 1e-3f, rng);

  Setup setup{&evaluator, &embedding, surrogate.get(), &dataset};
  CsvWriter csv({"sweep", "value", "best_score", "mean_discrepancy"});

  // ---- omega sweep ---------------------------------------------------------
  std::printf("\n-- guidance strength omega (higher = follow surrogate harder)\n");
  std::printf("%8s %12s %14s\n", "omega", "best score", "discrepancy");
  for (double omega : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    core::OptimizeParams p;
    p.omega = omega;
    double disc;
    const double score = best_score(setup, diffusion, p, 3, seed + 1, &disc);
    std::printf("%8.1f %12.3f %14.3f\n", omega, score, disc);
    csv.add_row({"omega", fmt_double(omega, 1), fmt_double(score, 4),
                 fmt_double(disc, 4)});
  }

  // ---- guidance ramp on/off -----------------------------------------------
  std::printf("\n-- guidance ramp (omega_t = omega*(1-t/T)) vs constant\n");
  for (bool ramp : {true, false}) {
    core::OptimizeParams p;
    p.guidance_ramp = ramp;
    double disc;
    const double score = best_score(setup, diffusion, p, 3, seed + 2, &disc);
    std::printf("%8s %12.3f %14.3f\n", ramp ? "ramp" : "const", score, disc);
    csv.add_row({"ramp", ramp ? "on" : "off", fmt_double(score, 4),
                 fmt_double(disc, 4)});
  }

  // ---- restart count --------------------------------------------------------
  std::printf("\n-- restarts (the paper repeats 30x and keeps the best)\n");
  for (int restarts : {1, 2, 4, 8}) {
    core::OptimizeParams p;
    double disc;
    const double score =
        best_score(setup, diffusion, p, restarts, seed + 3, &disc);
    std::printf("%8d %12.3f %14.3f\n", restarts, score, disc);
    csv.add_row({"restarts", std::to_string(restarts), fmt_double(score, 4),
                 fmt_double(disc, 4)});
  }

  // ---- denoising steps T ----------------------------------------------------
  std::printf("\n-- denoising steps T (paper: 500)\n");
  for (int steps : {20, 40, 80}) {
    models::DiffusionConfig cfg2;
    cfg2.num_steps = steps;
    clo::Rng r2(seed + 4);
    models::DiffusionModel d2(cfg2, r2);
    d2.train(embedded, 600, 16, 1e-3f, r2);
    core::OptimizeParams p;
    double disc;
    const double score = best_score(setup, d2, p, 3, seed + 5, &disc);
    std::printf("%8d %12.3f %14.3f\n", steps, score, disc);
    csv.add_row({"steps", std::to_string(steps), fmt_double(score, 4),
                 fmt_double(disc, 4)});
  }

  // ---- dataset size (surrogate fidelity) -------------------------------------
  std::printf("\n-- training dataset size (paper: 20000)\n");
  for (int n : {30, 60, dataset_size}) {
    core::Dataset sub;
    sub.sequences.assign(dataset.sequences.begin(),
                         dataset.sequences.begin() + n);
    sub.qor.assign(dataset.qor.begin(), dataset.qor.begin() + n);
    sub.area_mean = dataset.area_mean;
    sub.area_std = dataset.area_std;
    sub.delay_mean = dataset.delay_mean;
    sub.delay_std = dataset.delay_std;
    clo::Rng r3(seed + 6);
    auto s2 = models::make_surrogate("cnn", circuit, scfg, r3);
    const auto rep = core::train_surrogate(*s2, embedding, sub, tcfg, r3);
    Setup setup2{&evaluator, &embedding, s2.get(), &dataset};
    core::OptimizeParams p;
    double disc;
    const double score = best_score(setup2, diffusion, p, 3, seed + 7, &disc);
    std::printf("%8d %12.3f %14.3f  (spearman A %.2f)\n", n, score, disc,
                rep.spearman_area);
    csv.add_row({"dataset", std::to_string(n), fmt_double(score, 4),
                 fmt_double(disc, 4)});
  }

  std::printf("\nscores are weighted z-scores over the random dataset "
              "(lower = better; 0 = dataset mean).\n");
  const std::string out = args.get("out", "ablation_design.csv");
  if (csv.write(out)) std::printf("wrote %s\n", out.c_str());
  return 0;
}
