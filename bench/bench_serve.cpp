// Measures the serving path: an in-process `clo serve` daemon is warmed
// with one circuit, then concurrent clients hammer it with QoR queries
// that must be answered from the model registry + the evaluator's memo
// cache — zero synthesis runs after warm-up. Reported numbers are the
// sustained queries/sec and the per-query latency distribution, i.e. the
// gap between a cold `tune` (seconds to minutes) and a warm registry
// answer (milliseconds) that makes optimization-as-a-service viable.
//
//   ./bench_serve [--circuit ctrl] [--dataset 16] [--restarts 1]
//                 [--clients 4] [--requests 200] [--threads 0]
//                 [--out BENCH_serve.json]
//
// Output JSON (schema "clo.bench.serve.v1"):
//   {"schema": ..., "circuit", "clients", "requests",
//    "warmup_seconds",          // one-time cost: pretrain + first optimize
//    "queries_per_second",
//    "latency_ms": {"p50", "p90", "p99", "max"},
//    "unique_runs_delta"}       // synthesis runs during the query storm
//                               //   (MUST be 0: warm queries never synth)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "clo/serve/client.hpp"
#include "clo/serve/server.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/timer.hpp"

namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  const std::string circuit = args.get("circuit", "ctrl");
  const int dataset = args.get_int("dataset", 16);
  const int restarts = args.get_int("restarts", 1);
  const int clients = args.get_int("clients", 4);
  const int requests = args.get_int("requests", 200);
  const std::string out_path = args.get("out", "BENCH_serve.json");

  serve::ServerOptions options;
  options.port = 0;  // ephemeral
  options.sessions = clients;
  options.max_queue = clients * 2;
  options.threads = args.get_int("threads", 0);
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }

  // Warm-up: one cold tune pays pretraining + the first optimization;
  // everything after answers from the registry.
  obs::Json tune_req = obs::Json::object();
  tune_req["op"] = "tune";
  tune_req["circuit"] = circuit;
  tune_req["dataset"] = dataset;
  tune_req["restarts"] = restarts;
  Stopwatch warm_watch;
  warm_watch.start();
  {
    serve::Client client;
    if (!client.connect(server.port())) {
      std::fprintf(stderr, "cannot connect\n");
      return 1;
    }
    obs::Json resp;
    if (!client.request(tune_req, &resp) ||
        resp.find("status") == nullptr ||
        resp.find("status")->as_string() != "ok") {
      std::fprintf(stderr, "warm-up tune failed\n");
      return 1;
    }
  }
  warm_watch.stop();
  const double warmup_seconds = warm_watch.seconds();

  obs::Json qor_req = obs::Json::object();
  qor_req["op"] = "qor";
  qor_req["circuit"] = circuit;
  qor_req["dataset"] = dataset;
  qor_req["restarts"] = restarts;
  const std::string qor_line = qor_req.dump();

  // Synthesis-run counter before the storm: a warm query storm must not
  // move it (every answer comes from the registry + the memo cache).
  std::uint64_t runs_before = 0;
  {
    serve::Client probe;
    probe.connect(server.port());
    obs::Json resp;
    probe.request(qor_req, &resp);
    const obs::Json* ev = resp.find("evaluator");
    if (ev != nullptr && ev->find("unique_runs") != nullptr) {
      runs_before =
          static_cast<std::uint64_t>(ev->find("unique_runs")->as_double());
    }
  }

  std::vector<std::vector<double>> per_client_ms(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  Stopwatch storm;
  storm.start();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.connect(server.port())) {
        failures[static_cast<std::size_t>(c)] = requests;
        return;
      }
      auto& lat = per_client_ms[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests));
      std::string response;
      for (int i = 0; i < requests; ++i) {
        const auto begin = std::chrono::steady_clock::now();
        const bool ok = client.request_line(qor_line, &response);
        const auto end = std::chrono::steady_clock::now();
        if (!ok) {
          ++failures[static_cast<std::size_t>(c)];
          if (!client.connect(server.port())) break;
          continue;
        }
        lat.push_back(
            std::chrono::duration<double, std::milli>(end - begin).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  storm.stop();

  std::uint64_t runs_after = 0;
  {
    serve::Client probe;
    probe.connect(server.port());
    obs::Json resp;
    probe.request(qor_req, &resp);
    const obs::Json* ev = resp.find("evaluator");
    if (ev != nullptr && ev->find("unique_runs") != nullptr) {
      runs_after =
          static_cast<std::uint64_t>(ev->find("unique_runs")->as_double());
    }
  }
  server.stop();

  std::vector<double> all_ms;
  int failed = 0;
  for (int c = 0; c < clients; ++c) {
    const auto& lat = per_client_ms[static_cast<std::size_t>(c)];
    all_ms.insert(all_ms.end(), lat.begin(), lat.end());
    failed += failures[static_cast<std::size_t>(c)];
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double qps =
      storm.seconds() > 0.0
          ? static_cast<double>(all_ms.size()) / storm.seconds()
          : 0.0;
  const double p50 = percentile(all_ms, 0.50);
  const double p90 = percentile(all_ms, 0.90);
  const double p99 = percentile(all_ms, 0.99);
  const double worst = all_ms.empty() ? 0.0 : all_ms.back();
  const std::uint64_t runs_delta = runs_after - runs_before;

  std::printf("bench_serve: %s  %d client(s) x %d request(s)\n",
              circuit.c_str(), clients, requests);
  std::printf("  warm-up           %10.3f s (pretrain + first optimize)\n",
              warmup_seconds);
  std::printf("  sustained         %10.1f queries/s\n", qps);
  std::printf("  latency p50/p90/p99  %.3f / %.3f / %.3f ms (max %.3f)\n",
              p50, p90, p99, worst);
  std::printf("  synthesis runs during storm: %llu%s\n",
              static_cast<unsigned long long>(runs_delta),
              runs_delta == 0 ? " (all served from registry)" : "");
  if (failed > 0) std::printf("  FAILED requests: %d\n", failed);

  obs::Json doc = obs::Json::object();
  doc["schema"] = "clo.bench.serve.v1";
  doc["circuit"] = circuit;
  doc["clients"] = clients;
  doc["requests"] = requests;
  doc["warmup_seconds"] = warmup_seconds;
  doc["queries_per_second"] = qps;
  obs::Json lat = obs::Json::object();
  lat["p50"] = p50;
  lat["p90"] = p90;
  lat["p99"] = p99;
  lat["max"] = worst;
  doc["latency_ms"] = std::move(lat);
  doc["unique_runs_delta"] = static_cast<double>(runs_delta);
  doc["failed_requests"] = failed;
  if (!obs::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  // A warm storm that synthesized, or dropped requests, is a failed run.
  return (runs_delta == 0 && failed == 0) ? 0 : 1;
}
