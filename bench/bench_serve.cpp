// Measures the serving path: an in-process `clo serve` daemon is warmed
// with one circuit, then concurrent clients hammer it with QoR queries
// that must be answered from the model registry + the evaluator's memo
// cache — zero synthesis runs after warm-up. Reported numbers are the
// sustained queries/sec and the per-query latency distribution, i.e. the
// gap between a cold `tune` (seconds to minutes) and a warm registry
// answer (milliseconds) that makes optimization-as-a-service viable.
//
//   ./bench_serve [--circuit ctrl] [--dataset 16] [--restarts 1]
//                 [--clients 4] [--requests 200] [--threads 0]
//                 [--overload] [--out BENCH_serve.json]
//
// Output JSON (schema "clo.bench.serve.v1"):
//   {"schema": ..., "circuit", "clients", "requests",
//    "warmup_seconds",          // one-time cost: pretrain + first optimize
//    "queries_per_second",
//    "latency_ms": {"p50", "p90", "p99", "max"},
//    "unique_runs_delta"}       // synthesis runs during the query storm
//                               //   (MUST be 0: warm queries never synth)
//
// --overload instead drives a deliberately under-provisioned daemon
// (2 sessions, queue of 2) with more clients than capacity, a third of
// the requests carrying a 1 ms deadline and every client retrying "busy"
// sheds with jittered backoff. It reports how the daemon degraded —
// completed/shed/cancelled/deadline_exceeded counts plus the completed-
// request p99 — and fails only if the daemon stopped answering or
// returned an "internal" error; shedding and deadline kills are the
// expected, bounded behaviors under overload, not failures.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "clo/serve/client.hpp"
#include "clo/serve/server.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/timer.hpp"

namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// The --overload scenario: saturate a small daemon, measure degradation.
int run_overload(clo::CliArgs& args) {
  using namespace clo;
  const std::string circuit = args.get("circuit", "ctrl");
  const int dataset = args.get_int("dataset", 16);
  const int restarts = args.get_int("restarts", 1);
  const int clients = args.get_int("clients", 8);
  const int requests = args.get_int("requests", 50);
  const std::string out_path = args.get("out", "BENCH_serve.json");

  serve::ServerOptions options;
  options.port = 0;
  options.sessions = 2;   // deliberately under-provisioned
  options.max_queue = 2;  // shed early, shed often
  options.threads = args.get_int("threads", 0);
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }

  // Warm the registry so the storm measures overload handling, not
  // pretraining.
  obs::Json tune_req = obs::Json::object();
  tune_req["op"] = "tune";
  tune_req["circuit"] = circuit;
  tune_req["dataset"] = dataset;
  tune_req["restarts"] = restarts;
  {
    serve::Client client;
    obs::Json resp;
    if (!client.connect(server.port()) || !client.request(tune_req, &resp) ||
        resp.find("status") == nullptr ||
        resp.find("status")->as_string() != "ok") {
      std::fprintf(stderr, "warm-up tune failed\n");
      return 1;
    }
  }

  struct ClientTally {
    int completed = 0;
    int shed = 0;  ///< still busy / transport-dead after retries
    int cancelled = 0;
    int deadline_exceeded = 0;
    int internal = 0;
    int attempts = 0;
    std::vector<double> latency_ms;
  };
  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  Stopwatch storm;
  storm.start();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& tally = tallies[static_cast<std::size_t>(c)];
      serve::RetryPolicy policy;
      policy.retries = 3;
      policy.base_backoff_ms = 5;
      policy.max_backoff_ms = 40;
      policy.jitter_seed = static_cast<std::uint64_t>(c) + 1;
      for (int i = 0; i < requests; ++i) {
        obs::Json req = obs::Json::object();
        req["op"] = "qor";
        req["circuit"] = circuit;
        req["dataset"] = dataset;
        req["restarts"] = restarts;
        // Every third request carries a deadline tight enough that queue
        // wait under saturation can kill it: the mixed-deadline workload.
        if (i % 3 == 0) req["deadline_ms"] = 1;
        obs::Json resp;
        int attempts = 0;
        const auto begin = std::chrono::steady_clock::now();
        const bool got = serve::query_with_retry(
            server.port(), req, &resp, policy, /*timeout_ms=*/30000,
            &attempts);
        const auto end = std::chrono::steady_clock::now();
        tally.attempts += attempts;
        if (!got) {
          ++tally.shed;
          continue;
        }
        const obs::Json* status = resp.find("status");
        const obs::Json* code = resp.find("code");
        const std::string code_s =
            code != nullptr && code->is_string() ? code->as_string() : "";
        if (status != nullptr && status->is_string() &&
            status->as_string() == "ok") {
          ++tally.completed;
          tally.latency_ms.push_back(
              std::chrono::duration<double, std::milli>(end - begin)
                  .count());
        } else if (code_s == "busy") {
          ++tally.shed;
        } else if (code_s == "cancelled") {
          ++tally.cancelled;
        } else if (code_s == "deadline_exceeded") {
          ++tally.deadline_exceeded;
        } else {
          ++tally.internal;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  storm.stop();

  // The gate: after the storm the daemon must still answer, coherently.
  obs::Json status;
  bool alive = false;
  {
    serve::Client probe;
    obs::Json req = obs::Json::object();
    req["op"] = "status";
    alive = probe.connect(server.port()) && probe.request(req, &status) &&
            status.find("status") != nullptr &&
            status.find("status")->as_string() == "ok";
  }
  const auto counter = [&](const char* key) -> double {
    const obs::Json* v = status.find(key);
    return v != nullptr && v->is_number() ? v->as_double() : 0.0;
  };
  server.stop();

  ClientTally total;
  std::vector<double> all_ms;
  for (const auto& tally : tallies) {
    total.completed += tally.completed;
    total.shed += tally.shed;
    total.cancelled += tally.cancelled;
    total.deadline_exceeded += tally.deadline_exceeded;
    total.internal += tally.internal;
    total.attempts += tally.attempts;
    all_ms.insert(all_ms.end(), tally.latency_ms.begin(),
                  tally.latency_ms.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double p50 = percentile(all_ms, 0.50);
  const double p99 = percentile(all_ms, 0.99);
  const int issued = clients * requests;

  std::printf("bench_serve --overload: %d client(s) x %d request(s) "
              "against 2 sessions + queue 2\n",
              clients, requests);
  std::printf("  completed         %6d (p50 %.3f ms, p99 %.3f ms)\n",
              total.completed, p50, p99);
  std::printf("  shed              %6d (after retries; server shed %.0f "
              "connection(s))\n",
              total.shed, counter("shed"));
  std::printf("  deadline_exceeded %6d (server counted %.0f)\n",
              total.deadline_exceeded, counter("deadline_exceeded"));
  std::printf("  cancelled         %6d\n", total.cancelled);
  std::printf("  internal errors   %6d\n", total.internal);
  std::printf("  attempts          %6d for %d request(s)\n", total.attempts,
              issued);
  std::printf("  daemon alive after storm: %s\n", alive ? "yes" : "NO");

  obs::Json doc = obs::Json::object();
  doc["schema"] = "clo.bench.serve.v1";
  doc["scenario"] = "overload";
  doc["circuit"] = circuit;
  doc["clients"] = clients;
  doc["requests"] = requests;
  doc["completed"] = total.completed;
  doc["shed"] = total.shed;
  doc["cancelled"] = total.cancelled;
  doc["deadline_exceeded"] = total.deadline_exceeded;
  doc["internal_errors"] = total.internal;
  doc["attempts"] = total.attempts;
  doc["server_shed"] = counter("shed");
  doc["server_deadline_exceeded"] = counter("deadline_exceeded");
  doc["alive_after_storm"] = alive;
  obs::Json lat = obs::Json::object();
  lat["p50"] = p50;
  lat["p99"] = p99;
  lat["max"] = all_ms.empty() ? 0.0 : all_ms.back();
  doc["latency_ms"] = std::move(lat);
  doc["seconds"] = storm.seconds();
  if (!obs::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  // Shedding and deadline kills are expected degradation; a dead daemon,
  // an internal error, or zero completions is a failed run.
  return (alive && total.internal == 0 && total.completed > 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  if (args.has("overload")) return run_overload(args);
  const std::string circuit = args.get("circuit", "ctrl");
  const int dataset = args.get_int("dataset", 16);
  const int restarts = args.get_int("restarts", 1);
  const int clients = args.get_int("clients", 4);
  const int requests = args.get_int("requests", 200);
  const std::string out_path = args.get("out", "BENCH_serve.json");

  serve::ServerOptions options;
  options.port = 0;  // ephemeral
  options.sessions = clients;
  options.max_queue = clients * 2;
  options.threads = args.get_int("threads", 0);
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }

  // Warm-up: one cold tune pays pretraining + the first optimization;
  // everything after answers from the registry.
  obs::Json tune_req = obs::Json::object();
  tune_req["op"] = "tune";
  tune_req["circuit"] = circuit;
  tune_req["dataset"] = dataset;
  tune_req["restarts"] = restarts;
  Stopwatch warm_watch;
  warm_watch.start();
  {
    serve::Client client;
    if (!client.connect(server.port())) {
      std::fprintf(stderr, "cannot connect\n");
      return 1;
    }
    obs::Json resp;
    if (!client.request(tune_req, &resp) ||
        resp.find("status") == nullptr ||
        resp.find("status")->as_string() != "ok") {
      std::fprintf(stderr, "warm-up tune failed\n");
      return 1;
    }
  }
  warm_watch.stop();
  const double warmup_seconds = warm_watch.seconds();

  obs::Json qor_req = obs::Json::object();
  qor_req["op"] = "qor";
  qor_req["circuit"] = circuit;
  qor_req["dataset"] = dataset;
  qor_req["restarts"] = restarts;
  const std::string qor_line = qor_req.dump();

  // Synthesis-run counter before the storm: a warm query storm must not
  // move it (every answer comes from the registry + the memo cache).
  std::uint64_t runs_before = 0;
  {
    serve::Client probe;
    probe.connect(server.port());
    obs::Json resp;
    probe.request(qor_req, &resp);
    const obs::Json* ev = resp.find("evaluator");
    if (ev != nullptr && ev->find("unique_runs") != nullptr) {
      runs_before =
          static_cast<std::uint64_t>(ev->find("unique_runs")->as_double());
    }
  }

  std::vector<std::vector<double>> per_client_ms(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  Stopwatch storm;
  storm.start();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.connect(server.port())) {
        failures[static_cast<std::size_t>(c)] = requests;
        return;
      }
      auto& lat = per_client_ms[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests));
      std::string response;
      for (int i = 0; i < requests; ++i) {
        const auto begin = std::chrono::steady_clock::now();
        const bool ok = client.request_line(qor_line, &response);
        const auto end = std::chrono::steady_clock::now();
        if (!ok) {
          ++failures[static_cast<std::size_t>(c)];
          if (!client.connect(server.port())) break;
          continue;
        }
        lat.push_back(
            std::chrono::duration<double, std::milli>(end - begin).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  storm.stop();

  std::uint64_t runs_after = 0;
  {
    serve::Client probe;
    probe.connect(server.port());
    obs::Json resp;
    probe.request(qor_req, &resp);
    const obs::Json* ev = resp.find("evaluator");
    if (ev != nullptr && ev->find("unique_runs") != nullptr) {
      runs_after =
          static_cast<std::uint64_t>(ev->find("unique_runs")->as_double());
    }
  }
  server.stop();

  std::vector<double> all_ms;
  int failed = 0;
  for (int c = 0; c < clients; ++c) {
    const auto& lat = per_client_ms[static_cast<std::size_t>(c)];
    all_ms.insert(all_ms.end(), lat.begin(), lat.end());
    failed += failures[static_cast<std::size_t>(c)];
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double qps =
      storm.seconds() > 0.0
          ? static_cast<double>(all_ms.size()) / storm.seconds()
          : 0.0;
  const double p50 = percentile(all_ms, 0.50);
  const double p90 = percentile(all_ms, 0.90);
  const double p99 = percentile(all_ms, 0.99);
  const double worst = all_ms.empty() ? 0.0 : all_ms.back();
  const std::uint64_t runs_delta = runs_after - runs_before;

  std::printf("bench_serve: %s  %d client(s) x %d request(s)\n",
              circuit.c_str(), clients, requests);
  std::printf("  warm-up           %10.3f s (pretrain + first optimize)\n",
              warmup_seconds);
  std::printf("  sustained         %10.1f queries/s\n", qps);
  std::printf("  latency p50/p90/p99  %.3f / %.3f / %.3f ms (max %.3f)\n",
              p50, p90, p99, worst);
  std::printf("  synthesis runs during storm: %llu%s\n",
              static_cast<unsigned long long>(runs_delta),
              runs_delta == 0 ? " (all served from registry)" : "");
  if (failed > 0) std::printf("  FAILED requests: %d\n", failed);

  obs::Json doc = obs::Json::object();
  doc["schema"] = "clo.bench.serve.v1";
  doc["circuit"] = circuit;
  doc["clients"] = clients;
  doc["requests"] = requests;
  doc["warmup_seconds"] = warmup_seconds;
  doc["queries_per_second"] = qps;
  obs::Json lat = obs::Json::object();
  lat["p50"] = p50;
  lat["p90"] = p90;
  lat["p99"] = p99;
  lat["max"] = worst;
  doc["latency_ms"] = std::move(lat);
  doc["unique_runs_delta"] = static_cast<double>(runs_delta);
  doc["failed_requests"] = failed;
  if (!obs::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  // A warm storm that synthesized, or dropped requests, is a failed run.
  return (runs_delta == 0 && failed == 0) ? 0 : 1;
}
