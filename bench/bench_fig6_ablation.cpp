// Reproduces Fig. 6: area and delay of continuous optimization with and
// without the diffusion model, for each surrogate architecture (MTL,
// LOSTIN, CNN), with the FlowTune baseline as the reference line. Also
// prints the Fig. 4-style optimization trace (discrepancy + predicted QoR
// per denoising step).
//
// The dataset and diffusion model are shared across surrogate variants
// (they do not depend on the surrogate), exactly as a real study would.
//
//   ./bench_fig6_ablation [--circuit router] [--dataset 120] [--no-batch]
//   Output: console table + fig6_ablation.csv
//
// Telemetry (shared harness flags): --metrics-out F streams clo.metrics.v1
// JSONL while the bench runs (--metrics-interval-ms N), --metrics-port P
// serves live Prometheus text on 127.0.0.1:P, --profile-out F writes the
// clo.profile.v1 span profile on exit.

#include <cstdio>
#include <memory>

#include "clo/baselines/baseline.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/core/trainer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/thread_pool.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  const std::string circuit_name = args.get("circuit", "router");
  const int dataset_size = args.get_int("dataset", 160);
  const int diffusion_steps = args.get_int("steps", 60);
  const int restarts = args.get_int("restarts", 8);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const bool batch = !args.has("no-batch");
  const bench::ObsOptions obs_opts = bench::obs_from_args(args);
  const std::size_t workers = util::resolve_threads(args.get_int("threads", 0));
  std::unique_ptr<util::ThreadPool> pool;
  if (workers >= 2) pool = std::make_unique<util::ThreadPool>(workers);

  const aig::Aig circuit = circuits::make_benchmark(circuit_name);
  std::printf("circuit %s: %zu ANDs, depth %d\n", circuit_name.c_str(),
              circuit.num_ands(), circuit.depth());

  clo::Rng rng(seed);
  core::QorEvaluator evaluator(circuit);
  const auto original = evaluator.original();

  // ---- Shared pretraining inputs -----------------------------------------
  models::TransformEmbedding embedding(8, rng);
  std::fprintf(stderr, "[fig6] generating dataset (%d sequences)...\n",
               dataset_size);
  const auto dataset =
      core::generate_dataset(evaluator, dataset_size, 20, rng, pool.get());

  models::DiffusionConfig dcfg;
  dcfg.num_steps = diffusion_steps;
  models::DiffusionModel diffusion(dcfg, rng);
  {
    std::vector<std::vector<float>> data;
    for (const auto& seq : dataset.sequences) data.push_back(embedding.embed(seq));
    std::fprintf(stderr, "[fig6] training diffusion model...\n");
    diffusion.train(data, args.get_int("diffusion-iters", 700), 16, 1e-3f, rng);
  }

  // Pretraining synthesis is bookkept separately from the ablation sweep
  // below (same reset benches use between repetitions).
  evaluator.reset_stats();

  // ---- FlowTune reference line -------------------------------------------
  std::fprintf(stderr, "[fig6] FlowTune reference...\n");
  double flowtune_area, flowtune_delay;
  {
    core::QorEvaluator ev2(circuit);
    clo::Rng frng(seed + 9);
    baselines::BaselineParams params;
    params.eval_budget = args.get_int("budget", 30);
    auto ft = baselines::make_flowtune();
    const auto r = ft->optimize(ev2, params, frng);
    flowtune_area = r.best_qor.area_um2;
    flowtune_delay = r.best_qor.delay_ps;
  }

  // ---- Surrogate sweep × {with, without diffusion} ------------------------
  ConsoleTable table({"surrogate", "diffusion", "area um^2", "delay ps",
                      "discrepancy", "spearman(A)"});
  CsvWriter csv({"surrogate", "diffusion", "area_um2", "delay_ps",
                 "discrepancy", "spearman_area"});
  bool all_with_beat_flowtune = true;
  bool any_without_beat_flowtune = false;
  std::vector<core::OptimizeTracePoint> mtl_trace;

  for (const std::string kind : {"mtl", "lostin", "cnn"}) {
    std::fprintf(stderr, "[fig6] training surrogate %s...\n", kind.c_str());
    clo::Rng srng(seed + 100);
    models::SurrogateConfig scfg;
    auto surrogate = models::make_surrogate(kind, circuit, scfg, srng);
    core::TrainConfig tcfg;
    tcfg.epochs = args.get_int("epochs", 60);
    const auto report =
        core::train_surrogate(*surrogate, embedding, dataset, tcfg, srng);

    for (const bool use_diffusion : {true, false}) {
      core::OptimizeParams oparams;
      oparams.omega = args.get_double("omega", 4.0);
      oparams.use_diffusion = use_diffusion;
      core::ContinuousOptimizer optimizer(*surrogate, diffusion, embedding,
                                          oparams);
      clo::Rng orng(seed + 7);
      double best_area = 1e300, best_delay = 1e300, disc = 0.0;
      const auto results =
          optimizer.run_restarts(orng, restarts, pool.get(), batch);
      for (int r = 0; r < restarts; ++r) {
        const auto& result = results[r];
        const auto q = evaluator.evaluate(result.sequence);
        best_area = std::min(best_area, q.area_um2);
        best_delay = std::min(best_delay, q.delay_ps);
        disc += result.discrepancy / restarts;
        if (kind == "mtl" && use_diffusion && r == 0) {
          mtl_trace = result.trace;
        }
      }
      table.add_row({kind, use_diffusion ? "yes" : "no",
                     fmt_double(best_area, 2), fmt_double(best_delay, 2),
                     fmt_double(disc, 3),
                     fmt_double(report.spearman_area, 3)});
      csv.add_row({kind, use_diffusion ? "yes" : "no",
                   fmt_double(best_area, 4), fmt_double(best_delay, 4),
                   fmt_double(disc, 4), fmt_double(report.spearman_area, 3)});
      // "Beats/matches" on the joint objective: not worse on both
      // metrics beyond a 2% tolerance (the paper's bars are read the
      // same way).
      if (use_diffusion && best_area > 1.02 * flowtune_area &&
          best_delay > 1.02 * flowtune_delay) {
        all_with_beat_flowtune = false;
      }
      if (!use_diffusion && best_area < flowtune_area &&
          best_delay < flowtune_delay) {
        any_without_beat_flowtune = true;  // dominated FlowTune outright
      }
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("original : area %.2f delay %.2f\n", original.area_um2,
              original.delay_ps);
  std::printf("FlowTune : area %.2f delay %.2f (reference line)\n",
              flowtune_area, flowtune_delay);
  std::printf(
      "\nPaper's Fig. 6 shape to check:\n"
      "  (1) every surrogate WITH diffusion beats/matches FlowTune: %s\n"
      "  (2) WITHOUT diffusion can hardly beat FlowTune: %s\n",
      all_with_beat_flowtune ? "yes" : "NO",
      any_without_beat_flowtune ? "violated (some did)" : "holds");

  // Fig. 4-style optimization trace for the MTL + diffusion run.
  std::printf("\nOptimization trace (MTL + diffusion, Eq. 13):\n");
  std::printf("%8s %14s %14s\n", "t", "discrepancy", "predicted F");
  for (const auto& p : mtl_trace) {
    std::printf("%8d %14.4f %14.4f\n", p.t, p.discrepancy,
                p.predicted_objective);
  }

  const std::string out = args.get("out", "fig6_ablation.csv");
  if (csv.write(out)) std::printf("wrote %s\n", out.c_str());
  {
    obs::Json report = obs::Json::object();
    report["schema"] = obs::Json(std::string("clo.report.v1"));
    report["bench"] = obs::Json(std::string("fig6_ablation"));
    const auto stats = evaluator.snapshot();
    obs::Json ev = obs::Json::object();
    ev["queries"] = obs::Json(static_cast<std::uint64_t>(stats.queries));
    ev["unique_runs"] =
        obs::Json(static_cast<std::uint64_t>(stats.unique_runs));
    ev["cache_hits"] = obs::Json(static_cast<std::uint64_t>(stats.cache_hits));
    ev["hit_rate"] = obs::Json(stats.hit_rate);
    ev["synth_seconds"] = obs::Json(stats.synth_seconds);
    report["evaluator"] = ev;
    bench::obs_finish(obs_opts, std::move(report));
  }
  return 0;
}
