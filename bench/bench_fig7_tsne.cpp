// Reproduces Fig. 7 (and the illustrative Fig. 2): t-SNE projection of the
// feasible transformation embeddings together with optimized latent
// variables, with and without the diffusion model. Prints the retrieved
// sequences and their synthesized areas — the paper reports the
// no-diffusion area blowing up ~1.9x on `div`.
//
//   ./bench_fig7_tsne [--circuit div] [--dataset 80]
//   Output: console summary + fig7_tsne.csv (2-D points, labeled)

#include <cmath>
#include <cstdio>

#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/core/trainer.hpp"
#include "clo/core/tsne.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  const std::string circuit_name = args.get("circuit", "div");
  const int dataset_size = args.get_int("dataset", 120);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 4));
  const int L = 20, d = 8;

  const aig::Aig circuit = circuits::make_benchmark(circuit_name);
  clo::Rng rng(seed);
  core::QorEvaluator evaluator(circuit);

  // Pretrain (surrogate + diffusion) on the target circuit.
  models::TransformEmbedding embedding(d, rng);
  std::fprintf(stderr, "[fig7] dataset (%d sequences on %s)...\n",
               dataset_size, circuit_name.c_str());
  const auto dataset = core::generate_dataset(evaluator, dataset_size, L, rng);
  models::SurrogateConfig scfg;
  auto surrogate = models::make_surrogate("mtl", circuit, scfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = args.get_int("epochs", 60);
  core::train_surrogate(*surrogate, embedding, dataset, tcfg, rng);

  models::DiffusionConfig dcfg;
  dcfg.num_steps = args.get_int("steps", 60);
  models::DiffusionModel diffusion(dcfg, rng);
  {
    std::vector<std::vector<float>> data;
    for (const auto& seq : dataset.sequences) data.push_back(embedding.embed(seq));
    std::fprintf(stderr, "[fig7] training diffusion...\n");
    diffusion.train(data, args.get_int("diffusion-iters", 700), 16, 1e-3f, rng);
  }

  // Optimize with diffusion (Eq. 13) and without (Eq. 14 / Fig. 2a).
  // Multiple runs are averaged: at this reduced scale a single draw of
  // either variant is noisy (the paper plots one run at 170x our
  // training budget). The best run's latents feed the t-SNE plot.
  const int runs = args.get_int("runs", 5);
  core::OptimizeParams with_params;
  with_params.omega = args.get_double("omega", 4.0);
  core::ContinuousOptimizer with_diff(*surrogate, diffusion, embedding,
                                      with_params);
  core::OptimizeParams without_params;
  without_params.omega = args.get_double("omega", 4.0);
  without_params.use_diffusion = false;
  core::ContinuousOptimizer without_diff(*surrogate, diffusion, embedding,
                                         without_params);
  clo::Rng orng(seed + 1);
  core::OptimizeResult rw, rn;
  core::Qor qor_with{}, qor_without{};
  double with_area_mean = 0.0, without_area_mean = 0.0;
  double with_disc_mean = 0.0, without_disc_mean = 0.0;
  for (int r = 0; r < runs; ++r) {
    auto a = with_diff.run(orng);
    auto b = without_diff.run(orng);
    const auto qa = evaluator.evaluate(a.sequence);
    const auto qb = evaluator.evaluate(b.sequence);
    with_area_mean += qa.area_um2 / runs;
    without_area_mean += qb.area_um2 / runs;
    with_disc_mean += a.discrepancy / runs;
    without_disc_mean += b.discrepancy / runs;
    if (r == 0 || qa.area_um2 < qor_with.area_um2) {
      qor_with = qa;
      rw = std::move(a);
    }
    if (r == 0 || qb.area_um2 < qor_without.area_um2) {
      qor_without = qb;
      rn = std::move(b);
    }
  }

  std::printf("=== Fig. 7 on %s (mean of %d runs) ===\n",
              circuit_name.c_str(), runs);
  std::printf("with diffusion    : discrepancy %.4f  area %10.2f\n",
              with_disc_mean, with_area_mean);
  std::printf("  best sequence: [%s] (area %.2f)\n",
              opt::sequence_to_string(rw.sequence).c_str(),
              qor_with.area_um2);
  std::printf("without diffusion : discrepancy %.4f  area %10.2f\n",
              without_disc_mean, without_area_mean);
  std::printf("  best sequence: [%s] (area %.2f)\n",
              opt::sequence_to_string(rn.sequence).c_str(),
              qor_without.area_um2);
  std::printf(
      "\nPaper's Fig. 7 shape to check: without-diffusion discrepancy is "
      "much larger (%.2fx here) and its retrieved area is worse "
      "(paper: 1.9x on div; here: %.2fx on run means).\n",
      without_disc_mean / std::max(with_disc_mean, 1e-9),
      without_area_mean / std::max(with_area_mean, 1e-9));

  // ---- t-SNE projection ----------------------------------------------------
  // Points: the 7 feasible transformation embeddings (replicated with tiny
  // jitter to form visible clusters, as positions in training sequences
  // do), plus each position of both optimized latents.
  std::vector<std::vector<float>> points;
  std::vector<std::string> labels;
  clo::Rng jitter(seed + 2);
  for (int t = 0; t < opt::kNumTransforms; ++t) {
    for (int rep = 0; rep < 8; ++rep) {
      auto p = embedding.table()[t];
      for (auto& v : p) {
        v += 0.02f * static_cast<float>(jitter.next_gaussian());
      }
      points.push_back(std::move(p));
      labels.push_back(std::string("embed_") +
                       opt::transform_name(static_cast<opt::Transform>(t)));
    }
  }
  auto add_latent = [&](const std::vector<float>& latent,
                        const std::string& tag) {
    for (int pos = 0; pos < L; ++pos) {
      points.emplace_back(latent.begin() + pos * d,
                          latent.begin() + (pos + 1) * d);
      labels.push_back(tag);
    }
  };
  add_latent(rw.latent, "optimized_with_diffusion");
  add_latent(rn.latent, "optimized_without_diffusion");

  core::TsneParams tsne_params;
  tsne_params.iterations = args.get_int("tsne-iters", 300);
  clo::Rng trng(seed + 3);
  const auto projected = core::tsne(points, tsne_params, trng);

  CsvWriter csv({"label", "x", "y"});
  for (std::size_t i = 0; i < projected.size(); ++i) {
    csv.add_row({labels[i], fmt_double(projected[i].first, 4),
                 fmt_double(projected[i].second, 4)});
  }
  const std::string out = args.get("out", "fig7_tsne.csv");
  if (csv.write(out)) std::printf("wrote %s (plot x,y colored by label)\n",
                                  out.c_str());

  // Quantify the visual claim: mean 2-D distance from optimized points to
  // the nearest embedding cluster, with vs without diffusion.
  auto mean_dist_to_embeddings = [&](const std::string& tag) {
    double total = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < projected.size(); ++i) {
      if (labels[i] != tag) continue;
      double best = 1e300;
      for (std::size_t j = 0; j < projected.size(); ++j) {
        if (labels[j].rfind("embed_", 0) != 0) continue;
        const double dx = projected[i].first - projected[j].first;
        const double dy = projected[i].second - projected[j].second;
        best = std::min(best, dx * dx + dy * dy);
      }
      total += std::sqrt(best);
      ++count;
    }
    return total / std::max(count, 1);
  };
  std::printf("t-SNE distance to nearest embedding cluster: with %.3f, "
              "without %.3f\n",
              mean_dist_to_embeddings("optimized_with_diffusion"),
              mean_dist_to_embeddings("optimized_without_diffusion"));
  return 0;
}
