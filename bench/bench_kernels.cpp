// Micro-benchmark for the clo::nn::kernel dispatch layer: times every
// kernel on the shapes the real models hit (LSTM/MLP surrogate matmuls,
// U-Net conv1d im2col dots, matmul_ta backward slabs, Adam slabs,
// embedding nearest-scan sqdist), once per dispatch target, and records
// speedups against the scalar target at the same thread count.
//
//   ./bench_kernels [--out BENCH_kernels.json] [--min-ms 50] [--large]
//                   [--full] [--threads N] [--kernel-target T] [--no-simd]
//
// --threads N runs the tiled GEMM fan-out on an N-worker pool (1 =
// serial); --full adds the paper-scale batched shapes (R=30 restarts over
// [R, L*d] latents against full-width layers). --kernel-target restricts
// timing to one named target (scalar is always also run: it is the parity
// reference and the speedup baseline).
//
// Before timing anything it verifies the determinism contract the layer
// documents: for every case, every compiled-and-supported target at every
// thread count in {1, N} must produce BITWISE identical output to the
// serial scalar run (see kernel.hpp). A mismatch is a hard failure, not a
// footnote — CI runs this as the cross-target/cross-thread parity gate.
//
// Output JSON (schema "clo.bench.kernels.v1"):
//   { schema, simd_compiled, simd_supported, default_target, threads,
//     host_cores, min_ms,
//     results: [ { name, target, threads, flops_per_op, ns, gflops,
//                  speedup, parity } ] }
// One row per (case, target); `speedup` is scalar_ns / ns at the same
// thread count (1.0 for the scalar rows themselves).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clo/nn/kernel.hpp"
#include "clo/util/aligned.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using clo::util::AlignedFloats;
namespace kernel = clo::nn::kernel;

AlignedFloats random_buf(std::size_t n, clo::Rng& rng) {
  AlignedFloats v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

/// One benchmark case: `reset` restores the output buffer, `run` executes
/// the kernel once, `output` exposes the bytes compared across targets.
struct Case {
  std::string name;
  double flops_per_op = 0.0;
  std::function<void()> reset;
  std::function<void()> run;
  std::function<const AlignedFloats&()> output;
};

double time_ns_per_op(const Case& c, double min_ms) {
  using clock = std::chrono::steady_clock;
  c.reset();
  c.run();  // warm-up (page in buffers, settle dispatch)
  std::size_t iters = 1;
  for (;;) {
    c.reset();
    const auto begin = clock::now();
    for (std::size_t i = 0; i < iters; ++i) c.run();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - begin)
            .count();
    if (ms >= min_ms) {
      return ms * 1e6 / static_cast<double>(iters);
    }
    // Grow geometrically toward the time budget (at least 2x).
    const double scale = ms > 0.0 ? (1.5 * min_ms) / ms : 2.0;
    iters = static_cast<std::size_t>(
        static_cast<double>(iters) * (scale < 2.0 ? 2.0 : scale));
  }
}

/// Capture the case's output bytes after one run under the current
/// dispatch target and kernel pool.
AlignedFloats run_once(const Case& c) {
  c.reset();
  c.run();
  return c.output();
}

bool same_bytes(const AlignedFloats& a, const AlignedFloats& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_kernels.json");
  const double min_ms = args.get_double("min-ms", 50.0);
  const bool large = args.has("large");
  const bool full = args.has("full");
  const int threads = std::atoi(args.get("threads", "1").c_str());
  if (args.has("no-simd")) kernel::set_simd_enabled(false);

  // The targets to time: every compiled-and-supported one, or just the
  // named one (plus scalar, the reference) behind --kernel-target.
  std::vector<kernel::Target> targets = {kernel::Target::kScalar};
  const std::string only = args.get("kernel-target", "");
  const bool all_targets = only.empty() || only == "auto";
  if (!all_targets && only != "scalar") {
    kernel::Target parsed;
    if (!kernel::parse_target(only.c_str(), &parsed)) {
      std::fprintf(stderr, "unknown --kernel-target %s\n", only.c_str());
      return 2;
    }
  }
  for (kernel::Target t : {kernel::Target::kAvx2, kernel::Target::kAvx512}) {
    if (!kernel::target_compiled(t) || !kernel::target_supported(t)) continue;
    if (!all_targets && only != kernel::target_name(t)) continue;
    if (kernel::simd_enabled()) targets.push_back(t);
  }
  if (!all_targets && only != "scalar" && targets.size() == 1) {
    std::fprintf(stderr, "note: target %s not supported here; scalar only\n",
                 only.c_str());
  }

  // Worker pool for the tiled GEMM fan-out (null = serial). The pool is
  // installed per timing/parity run via PoolGuard so `threads 1` rows
  // really measure the serial path.
  std::unique_ptr<util::ThreadPool> pool;
  if (threads >= 2) pool = std::make_unique<util::ThreadPool>(threads);

  Rng rng(7);
  std::vector<Case> cases;

  // --- matmul, non-transposed: the surrogate MLP/LSTM forward shapes.
  // (m,k,n) = (batch, in, out): LSTM input 16x8x128, LSTM hidden
  // 16x32x128, MLP head 16x32x32, plus square slabs for headline numbers.
  struct MatmulShape {
    const char* name;
    int m, k, n;
    bool transpose_b;
  };
  std::vector<MatmulShape> mm = {
      {"matmul_lstm_input_16x8x128", 16, 8, 128, false},
      {"matmul_lstm_hidden_16x32x128", 16, 32, 128, false},
      {"matmul_mlp_16x32x32", 16, 32, 32, false},
      {"matmul_64x64x64", 64, 64, 64, false},
      // conv1d's im2col forward is exactly a transpose_b matmul
      // (weights [Co, Ci*K] x patches [L, Ci*K]): U-Net shapes at K=3.
      {"conv1d_im2col_co8_ci8_l20", 8, 24, 20, true},
      {"conv1d_im2col_co32_ci32_l10", 32, 96, 10, true},
      {"conv1d_im2col_co64_ci64_l5", 64, 192, 5, true},
      {"matmul_t_64x64x64", 64, 64, 64, true},
  };
  if (large || full) {
    mm.push_back({"matmul_128x128x128", 128, 128, 128, false});
    mm.push_back({"matmul_t_128x128x128", 128, 128, 128, true});
  }
  if (full) {
    // Paper-scale batched shapes: all 30 restarts advance in lockstep, so
    // the denoiser/surrogate see [R, L*d] = [30, 160] activations against
    // full-width layer matrices. The square 256 slab is the headline
    // threaded-GEMM number.
    mm.push_back({"matmul_batch30_160x256", 30, 160, 256, false});
    mm.push_back({"matmul_batch30_256x256", 30, 256, 256, false});
    mm.push_back({"matmul_t_batch30_160x256", 30, 160, 256, true});
    mm.push_back({"matmul_256x256x256", 256, 256, 256, false});
  }
  for (const auto& s : mm) {
    auto a = std::make_shared<AlignedFloats>(
        random_buf(static_cast<std::size_t>(s.m) * s.k, rng));
    auto b = std::make_shared<AlignedFloats>(
        random_buf(static_cast<std::size_t>(s.k) * s.n, rng));
    auto out = std::make_shared<AlignedFloats>(
        static_cast<std::size_t>(s.m) * s.n);
    const int m = s.m, k = s.k, n = s.n;
    const bool tb = s.transpose_b;
    cases.push_back(Case{
        s.name,
        2.0 * m * k * n,
        [out] { std::fill(out->begin(), out->end(), 0.0f); },
        [a, b, out, m, k, n, tb] {
          kernel::matmul(a->data(), b->data(), out->data(), m, k, n, tb);
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
  }

  // --- matmul_ta: the backward-pass dB slabs (out[k,n] += A^T B). Shapes
  // mirror the forward matmuls above: (m,k,n) = (batch, in, out).
  std::vector<MatmulShape> ta = {
      {"matmul_ta_16x32x128", 16, 32, 128, false},
      {"matmul_ta_64x64x64", 64, 64, 64, false},
  };
  if (full) {
    ta.push_back({"matmul_ta_batch30_160x256", 30, 160, 256, false});
    ta.push_back({"matmul_ta_256x256x256", 256, 256, 256, false});
  }
  for (const auto& s : ta) {
    auto a = std::make_shared<AlignedFloats>(
        random_buf(static_cast<std::size_t>(s.m) * s.k, rng));
    auto b = std::make_shared<AlignedFloats>(
        random_buf(static_cast<std::size_t>(s.m) * s.n, rng));
    auto out = std::make_shared<AlignedFloats>(
        static_cast<std::size_t>(s.k) * s.n);
    const int m = s.m, k = s.k, n = s.n;
    cases.push_back(Case{
        s.name,
        2.0 * m * k * n,
        [out] { std::fill(out->begin(), out->end(), 0.0f); },
        [a, b, out, m, k, n] {
          kernel::matmul_ta(a->data(), b->data(), out->data(), m, k, n);
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
  }

  // --- Reductions on the latent-vector length the optimizer touches
  // (L=20 x d=8 = 160) and a larger slab.
  for (std::size_t n : {std::size_t{160}, std::size_t{4096}}) {
    auto a = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto b = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto out = std::make_shared<AlignedFloats>(1);
    const auto tag = std::to_string(n);
    cases.push_back(Case{
        "dot_n" + tag, 2.0 * static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, b, out, n] { (*out)[0] = kernel::dot(a->data(), b->data(), n); },
        [out]() -> const AlignedFloats& { return *out; },
    });
    cases.push_back(Case{
        "sqdist_n" + tag, 3.0 * static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, b, out, n] {
          (*out)[0] = kernel::sqdist(a->data(), b->data(), n);
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
    cases.push_back(Case{
        "sum_n" + tag, static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, out, n] { (*out)[0] = kernel::sum(a->data(), n); },
        [out]() -> const AlignedFloats& { return *out; },
    });
    cases.push_back(Case{
        "max_n" + tag, static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, out, n] { (*out)[0] = kernel::max_value(a->data(), n); },
        [out]() -> const AlignedFloats& { return *out; },
    });
    // axpy accumulates into its output, so reset restores a pristine copy
    // before every timed batch and parity run.
    auto y0 = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto y = std::make_shared<AlignedFloats>(*y0);
    cases.push_back(Case{
        "axpy_n" + tag, 2.0 * static_cast<double>(n),
        [y, y0] { *y = *y0; },
        [a, y, n] { kernel::axpy(y->data(), 0.5f, a->data(), n); },
        [y]() -> const AlignedFloats& { return *y; },
    });
  }

  // --- Fused Adam step over a realistic parameter slab (~100k floats:
  // the diffusion U-Net's biggest layers are this order of magnitude).
  {
    const std::size_t n = 100000;
    auto p0 = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto p = std::make_shared<AlignedFloats>(*p0);
    auto m = std::make_shared<AlignedFloats>(n, 0.0f);
    auto v = std::make_shared<AlignedFloats>(n, 0.0f);
    auto g = std::make_shared<AlignedFloats>(random_buf(n, rng));
    cases.push_back(Case{
        "adam_n100000", 10.0 * static_cast<double>(n),
        [p, p0, m, v] {
          *p = *p0;
          std::fill(m->begin(), m->end(), 0.0f);
          std::fill(v->begin(), v->end(), 0.0f);
        },
        [p, m, v, g, n] {
          kernel::adam_update(p->data(), m->data(), v->data(), g->data(), n,
                              0.9f, 0.999f, 1e-3f, 1.0f, 1.0f, 1e-8f);
        },
        [p]() -> const AlignedFloats& { return *p; },
    });
  }

  // --- Embedding nearest-scan: sqdist over a 7-entry table of dim-8 rows,
  // L=20 positions — the discrepancy/rounding hot loop, as one case.
  {
    constexpr std::size_t dim = 8, table_n = 7, L = 20;
    auto table =
        std::make_shared<AlignedFloats>(random_buf(table_n * dim, rng));
    auto pts = std::make_shared<AlignedFloats>(random_buf(L * dim, rng));
    auto out = std::make_shared<AlignedFloats>(L);
    cases.push_back(Case{
        "nearest_scan_l20_d8_t7",
        3.0 * static_cast<double>(dim) * table_n * L,
        [out] { std::fill(out->begin(), out->end(), 0.0f); },
        [table, pts, out] {
          for (std::size_t l = 0; l < L; ++l) {
            float best = 1e30f;
            for (std::size_t t = 0; t < table_n; ++t) {
              const float d = kernel::sqdist(pts->data() + l * dim,
                                             table->data() + t * dim, dim);
              if (d < best) best = d;
            }
            (*out)[l] = best;
          }
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
  }

  std::printf(
      "kernels: simd_compiled=%d simd_supported=%d target=%s threads=%d\n",
      kernel::simd_compiled() ? 1 : 0, kernel::simd_supported() ? 1 : 0,
      kernel::active_target(), threads);

  const kernel::Target default_target = kernel::current_target();
  obs::Json results = obs::Json::array();
  bool parity_ok = true;
  for (const auto& c : cases) {
    // Reference bytes: serial scalar run — the portable ground truth every
    // (target, thread-count) combination must reproduce bit-for-bit.
    kernel::set_target(kernel::Target::kScalar);
    AlignedFloats reference;
    {
      kernel::PoolGuard serial(nullptr);
      reference = run_once(c);
    }

    // Parity gate: every target x every thread count in {1, threads}.
    std::vector<std::string> parity(targets.size(), "bitwise");
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      kernel::set_target(targets[ti]);
      bool ok = true;
      {
        kernel::PoolGuard serial(nullptr);
        ok = ok && same_bytes(reference, run_once(c));
      }
      if (pool != nullptr) {
        kernel::PoolGuard threaded(pool.get());
        ok = ok && same_bytes(reference, run_once(c));
      }
      if (!ok) {
        parity[ti] = "MISMATCH";
        parity_ok = false;
      }
    }

    // Timing: each target at the requested thread count; scalar at the
    // same count is the speedup baseline.
    kernel::PoolGuard timing_pool(pool.get());
    double scalar_ns = 0.0;
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      kernel::set_target(targets[ti]);
      const double ns = time_ns_per_op(c, min_ms);
      if (targets[ti] == kernel::Target::kScalar) scalar_ns = ns;

      obs::Json row = obs::Json::object();
      row["name"] = obs::Json(c.name);
      row["target"] =
          obs::Json(std::string(kernel::target_name(targets[ti])));
      row["threads"] = obs::Json(static_cast<double>(threads));
      row["flops_per_op"] = obs::Json(c.flops_per_op);
      row["ns"] = obs::Json(ns);
      row["gflops"] = obs::Json(c.flops_per_op / ns);
      row["speedup"] = obs::Json(scalar_ns > 0.0 ? scalar_ns / ns : 1.0);
      row["parity"] = obs::Json(parity[ti]);
      results.push_back(std::move(row));

      std::printf("%-32s %-7s t%-2d %12.1f ns  x%5.2f  %s\n", c.name.c_str(),
                  kernel::target_name(targets[ti]), threads, ns,
                  scalar_ns > 0.0 ? scalar_ns / ns : 1.0,
                  parity[ti].c_str());
    }
  }
  // Leave the dispatch switch where the command line asked for it.
  kernel::set_target(default_target);

  obs::Json doc = obs::Json::object();
  doc["schema"] = obs::Json(std::string("clo.bench.kernels.v1"));
  doc["simd_compiled"] = obs::Json(kernel::simd_compiled());
  doc["simd_supported"] = obs::Json(kernel::simd_supported());
  doc["default_target"] = obs::Json(std::string(kernel::active_target()));
  doc["threads"] = obs::Json(static_cast<double>(threads));
  doc["host_cores"] = obs::Json(
      static_cast<double>(std::thread::hardware_concurrency()));
  doc["min_ms"] = obs::Json(min_ms);
  doc["results"] = std::move(results);
  if (!obs::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!parity_ok) {
    std::fprintf(stderr,
                 "FATAL: cross-target/cross-thread outputs differ bitwise — "
                 "the kernel determinism contract is broken\n");
    return 1;
  }
  return 0;
}
