// Micro-benchmark for the clo::nn::kernel dispatch layer: times every
// kernel on the shapes the real models hit (LSTM/MLP surrogate matmuls,
// U-Net conv1d im2col dots, Adam slabs, embedding nearest-scan sqdist),
// once per dispatch target, and records scalar-vs-SIMD speedups.
//
//   ./bench_kernels [--out BENCH_kernels.json] [--min-ms 50] [--large]
//                   [--no-simd]
//
// Before timing anything it verifies the determinism contract the layer
// documents: for every case the scalar and AVX2 targets must produce
// BITWISE identical outputs (see kernel.hpp). A mismatch is a hard
// failure, not a footnote — CI runs this as the cross-target parity gate.
//
// Output JSON (schema "clo.bench.kernels.v1"):
//   { schema, simd_compiled, simd_supported, default_target,
//     results: [ { name, flops_per_op, scalar_ns, simd_ns, speedup,
//                  scalar_gflops, simd_gflops, parity } ] }
// On hosts without AVX2 the simd columns are omitted and parity is
// "scalar-only".

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clo/nn/kernel.hpp"
#include "clo/util/aligned.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/rng.hpp"

namespace {

using clo::util::AlignedFloats;
namespace kernel = clo::nn::kernel;

AlignedFloats random_buf(std::size_t n, clo::Rng& rng) {
  AlignedFloats v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

/// One benchmark case: `reset` restores the output buffer, `run` executes
/// the kernel once, `output` exposes the bytes compared across targets.
struct Case {
  std::string name;
  double flops_per_op = 0.0;
  std::function<void()> reset;
  std::function<void()> run;
  std::function<const AlignedFloats&()> output;
};

double time_ns_per_op(const Case& c, double min_ms) {
  using clock = std::chrono::steady_clock;
  c.reset();
  c.run();  // warm-up (page in buffers, settle dispatch)
  std::size_t iters = 1;
  for (;;) {
    c.reset();
    const auto begin = clock::now();
    for (std::size_t i = 0; i < iters; ++i) c.run();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - begin)
            .count();
    if (ms >= min_ms) {
      return ms * 1e6 / static_cast<double>(iters);
    }
    // Grow geometrically toward the time budget (at least 2x).
    const double scale = ms > 0.0 ? (1.5 * min_ms) / ms : 2.0;
    iters = static_cast<std::size_t>(
        static_cast<double>(iters) * (scale < 2.0 ? 2.0 : scale));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clo;
  CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_kernels.json");
  const double min_ms = args.get_double("min-ms", 50.0);
  const bool large = args.has("large");
  if (args.has("no-simd")) kernel::set_simd_enabled(false);

  Rng rng(7);
  std::vector<Case> cases;

  // --- matmul, non-transposed: the surrogate MLP/LSTM forward shapes.
  // (m,k,n) = (batch, in, out): LSTM input 16x8x128, LSTM hidden
  // 16x32x128, MLP head 16x32x32, plus square slabs for headline numbers.
  struct MatmulShape {
    const char* name;
    int m, k, n;
    bool transpose_b;
  };
  std::vector<MatmulShape> mm = {
      {"matmul_lstm_input_16x8x128", 16, 8, 128, false},
      {"matmul_lstm_hidden_16x32x128", 16, 32, 128, false},
      {"matmul_mlp_16x32x32", 16, 32, 32, false},
      {"matmul_64x64x64", 64, 64, 64, false},
      // conv1d's im2col forward is exactly a transpose_b matmul
      // (weights [Co, Ci*K] x patches [L, Ci*K]): U-Net shapes at K=3.
      {"conv1d_im2col_co8_ci8_l20", 8, 24, 20, true},
      {"conv1d_im2col_co32_ci32_l10", 32, 96, 10, true},
      {"conv1d_im2col_co64_ci64_l5", 64, 192, 5, true},
      {"matmul_t_64x64x64", 64, 64, 64, true},
  };
  if (large) {
    mm.push_back({"matmul_128x128x128", 128, 128, 128, false});
    mm.push_back({"matmul_t_128x128x128", 128, 128, 128, true});
  }
  for (const auto& s : mm) {
    auto a = std::make_shared<AlignedFloats>(
        random_buf(static_cast<std::size_t>(s.m) * s.k, rng));
    auto b = std::make_shared<AlignedFloats>(
        random_buf(static_cast<std::size_t>(s.k) * s.n, rng));
    auto out = std::make_shared<AlignedFloats>(
        static_cast<std::size_t>(s.m) * s.n);
    const int m = s.m, k = s.k, n = s.n;
    const bool tb = s.transpose_b;
    cases.push_back(Case{
        s.name,
        2.0 * m * k * n,
        [out] { std::fill(out->begin(), out->end(), 0.0f); },
        [a, b, out, m, k, n, tb] {
          kernel::matmul(a->data(), b->data(), out->data(), m, k, n, tb);
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
  }

  // --- Reductions on the latent-vector length the optimizer touches
  // (L=20 x d=8 = 160) and a larger slab.
  for (std::size_t n : {std::size_t{160}, std::size_t{4096}}) {
    auto a = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto b = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto out = std::make_shared<AlignedFloats>(1);
    const auto tag = std::to_string(n);
    cases.push_back(Case{
        "dot_n" + tag, 2.0 * static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, b, out, n] { (*out)[0] = kernel::dot(a->data(), b->data(), n); },
        [out]() -> const AlignedFloats& { return *out; },
    });
    cases.push_back(Case{
        "sqdist_n" + tag, 3.0 * static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, b, out, n] {
          (*out)[0] = kernel::sqdist(a->data(), b->data(), n);
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
    cases.push_back(Case{
        "sum_n" + tag, static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, out, n] { (*out)[0] = kernel::sum(a->data(), n); },
        [out]() -> const AlignedFloats& { return *out; },
    });
    cases.push_back(Case{
        "max_n" + tag, static_cast<double>(n),
        [out] { (*out)[0] = 0.0f; },
        [a, out, n] { (*out)[0] = kernel::max_value(a->data(), n); },
        [out]() -> const AlignedFloats& { return *out; },
    });
    // axpy accumulates into its output, so reset restores a pristine copy
    // before every timed batch and parity run.
    auto y0 = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto y = std::make_shared<AlignedFloats>(*y0);
    cases.push_back(Case{
        "axpy_n" + tag, 2.0 * static_cast<double>(n),
        [y, y0] { *y = *y0; },
        [a, y, n] { kernel::axpy(y->data(), 0.5f, a->data(), n); },
        [y]() -> const AlignedFloats& { return *y; },
    });
  }

  // --- Fused Adam step over a realistic parameter slab (~100k floats:
  // the diffusion U-Net's biggest layers are this order of magnitude).
  {
    const std::size_t n = 100000;
    auto p0 = std::make_shared<AlignedFloats>(random_buf(n, rng));
    auto p = std::make_shared<AlignedFloats>(*p0);
    auto m = std::make_shared<AlignedFloats>(n, 0.0f);
    auto v = std::make_shared<AlignedFloats>(n, 0.0f);
    auto g = std::make_shared<AlignedFloats>(random_buf(n, rng));
    cases.push_back(Case{
        "adam_n100000", 10.0 * static_cast<double>(n),
        [p, p0, m, v] {
          *p = *p0;
          std::fill(m->begin(), m->end(), 0.0f);
          std::fill(v->begin(), v->end(), 0.0f);
        },
        [p, m, v, g, n] {
          kernel::adam_update(p->data(), m->data(), v->data(), g->data(), n,
                              0.9f, 0.999f, 1e-3f, 1.0f, 1.0f, 1e-8f);
        },
        [p]() -> const AlignedFloats& { return *p; },
    });
  }

  // --- Embedding nearest-scan: sqdist over a 7-entry table of dim-8 rows,
  // L=20 positions — the discrepancy/rounding hot loop, as one case.
  {
    constexpr std::size_t dim = 8, table_n = 7, L = 20;
    auto table =
        std::make_shared<AlignedFloats>(random_buf(table_n * dim, rng));
    auto pts = std::make_shared<AlignedFloats>(random_buf(L * dim, rng));
    auto out = std::make_shared<AlignedFloats>(L);
    cases.push_back(Case{
        "nearest_scan_l20_d8_t7",
        3.0 * static_cast<double>(dim) * table_n * L,
        [out] { std::fill(out->begin(), out->end(), 0.0f); },
        [table, pts, out] {
          for (std::size_t l = 0; l < L; ++l) {
            float best = 1e30f;
            for (std::size_t t = 0; t < table_n; ++t) {
              const float d = kernel::sqdist(pts->data() + l * dim,
                                             table->data() + t * dim, dim);
              if (d < best) best = d;
            }
            (*out)[l] = best;
          }
        },
        [out]() -> const AlignedFloats& { return *out; },
    });
  }

  const bool both_targets = kernel::simd_enabled();
  std::printf("kernels: simd_compiled=%d simd_supported=%d target=%s\n",
              kernel::simd_compiled() ? 1 : 0,
              kernel::simd_supported() ? 1 : 0, kernel::active_target());

  obs::Json results = obs::Json::array();
  bool parity_ok = true;
  for (const auto& c : cases) {
    // Cross-target bitwise parity first (the contract CI gates on).
    std::string parity = "scalar-only";
    if (both_targets) {
      kernel::set_simd_enabled(false);
      c.reset();
      c.run();
      const AlignedFloats scalar_out = c.output();
      kernel::set_simd_enabled(true);
      c.reset();
      c.run();
      const AlignedFloats& simd_out = c.output();
      const bool same =
          scalar_out.size() == simd_out.size() &&
          std::memcmp(scalar_out.data(), simd_out.data(),
                      scalar_out.size() * sizeof(float)) == 0;
      parity = same ? "bitwise" : "MISMATCH";
      if (!same) parity_ok = false;
    }

    kernel::set_simd_enabled(false);
    const double scalar_ns = time_ns_per_op(c, min_ms);
    double simd_ns = 0.0;
    if (both_targets) {
      kernel::set_simd_enabled(true);
      simd_ns = time_ns_per_op(c, min_ms);
    }

    obs::Json row = obs::Json::object();
    row["name"] = obs::Json(c.name);
    row["flops_per_op"] = obs::Json(c.flops_per_op);
    row["scalar_ns"] = obs::Json(scalar_ns);
    row["scalar_gflops"] = obs::Json(c.flops_per_op / scalar_ns);
    if (both_targets) {
      row["simd_ns"] = obs::Json(simd_ns);
      row["simd_gflops"] = obs::Json(c.flops_per_op / simd_ns);
      row["speedup"] = obs::Json(scalar_ns / simd_ns);
    }
    row["parity"] = obs::Json(parity);
    results.push_back(std::move(row));

    if (both_targets) {
      std::printf("%-32s scalar %10.1f ns  simd %10.1f ns  x%5.2f  %s\n",
                  c.name.c_str(), scalar_ns, simd_ns, scalar_ns / simd_ns,
                  parity.c_str());
    } else {
      std::printf("%-32s scalar %10.1f ns\n", c.name.c_str(), scalar_ns);
    }
  }
  // Leave the dispatch switch where the command line asked for it.
  kernel::set_simd_enabled(both_targets);

  obs::Json doc = obs::Json::object();
  doc["schema"] = obs::Json(std::string("clo.bench.kernels.v1"));
  doc["simd_compiled"] = obs::Json(kernel::simd_compiled());
  doc["simd_supported"] = obs::Json(kernel::simd_supported());
  doc["default_target"] =
      obs::Json(std::string(both_targets ? "avx2" : "scalar"));
  doc["min_ms"] = obs::Json(min_ms);
  doc["results"] = std::move(results);
  if (!obs::write_json_file(out_path, doc)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!parity_ok) {
    std::fprintf(stderr,
                 "FATAL: scalar/simd outputs differ bitwise — the kernel "
                 "determinism contract is broken\n");
    return 1;
  }
  return 0;
}
