// Scaling benchmarks for the thread-pool substrate (google-benchmark):
// dataset QoR labeling, latent optimization restarts, and the raw pool
// overhead, each swept over worker counts. The labeling sweep is the
// ISSUE's ">= 3x at 8 threads vs 1" acceptance probe — run it on a
// machine with >= 8 cores; on fewer cores the curve simply flattens at
// hardware concurrency.
//
//   ./bench_parallel --benchmark_filter=DatasetLabeling

#include <benchmark/benchmark.h>

#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

// A fresh evaluator per iteration: the memo cache would otherwise turn
// every iteration after the first into pure cache hits.
void BM_DatasetLabeling(benchmark::State& state) {
  const aig::Aig g = circuits::make_benchmark("c880");
  const int n = 48;
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    state.PauseTiming();
    core::QorEvaluator evaluator(g);
    clo::Rng rng(7);
    state.ResumeTiming();
    const auto ds = core::generate_dataset(evaluator, n, 20, rng,
                                           threads >= 2 ? &pool : nullptr);
    benchmark::DoNotOptimize(ds.qor.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DatasetLabeling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Pure pool overhead: submit/complete cycles for trivial tasks.
void BM_PoolSubmit(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> sum{0};
    util::parallel_for(&pool, 256, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PoolSubmit)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
