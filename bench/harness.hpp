#pragma once
// Shared experiment harness for the paper-reproduction benches: runs each
// method (4 baselines + ours) on a circuit with consistent budgets and the
// paper's accounting (best-of-restarts QoR, algorithm-only runtime).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "clo/baselines/baseline.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/nn/kernel.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/exporter.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/log.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"

namespace clo::bench {

struct MethodResult {
  std::string method;
  double area = 0.0;    ///< best area found (um^2)
  double delay = 0.0;   ///< best delay found (ps)
  double algorithm_seconds = 0.0;
  double training_seconds = 0.0;  ///< ours only (one-time effort)
};

struct ExperimentScale {
  int seq_len = 20;
  int baseline_budget = 16;   ///< synthesis evaluations per baseline run
  int dataset_size = 200;     ///< ours: training sequences (paper: 20000)
  int diffusion_steps = 60;   ///< ours: T (paper: 500)
  int diffusion_iters = 500;
  int restarts = 8;           ///< per objective weighting (3x total; paper: 30)
  int surrogate_epochs = 80;
  double omega = 4.0;         ///< guidance strength
  std::string surrogate = "cnn";
  std::uint64_t seed = 1;
  int threads = 0;            ///< 0 = hardware concurrency, 1 = serial
  bool batch = true;          ///< false = per-restart fallback (--no-batch)
};

/// Observability artifacts a bench was asked for on its command line.
struct ObsOptions {
  std::string trace_path;
  std::string report_path;
  bool metrics = false;
  std::string metrics_out;   ///< clo.metrics.v1 JSONL stream
  int metrics_interval_ms = 1000;
  int metrics_port = -1;     ///< Prometheus listener (-1 = off)
  std::string profile_path;  ///< clo.profile.v1 on finish
  /// Live exporter started by obs_from_args (null when no --metrics-out /
  /// --metrics-port); stopped by obs_finish or, failing that, its own
  /// destructor at end of main.
  std::shared_ptr<util::Exporter> exporter;
};

/// Parse --trace F / --report F / --metrics / --metrics-out F /
/// --metrics-interval-ms N / --metrics-port P / --profile-out F; any of
/// them turns the obs layer on for the whole bench run, and the
/// --metrics-out / --metrics-port pair starts the live exporter
/// immediately. --no-simd forces the portable scalar nn kernels and
/// --kernel-target pins a named dispatch target (bitwise-identical
/// results either way, useful for speedup baselines and bisection). Also
/// arms fault injection from --fault SPEC or the CLO_FAULT environment
/// variable, so every bench can serve as a chaos-test target without its
/// own plumbing.
inline ObsOptions obs_from_args(const CliArgs& args) {
  ObsOptions opts;
  if (args.has("no-simd")) nn::kernel::set_simd_enabled(false);
  const std::string kernel_target = args.get("kernel-target", "");
  if (!kernel_target.empty()) {
    nn::kernel::Target target;
    if (nn::kernel::parse_target(kernel_target.c_str(), &target)) {
      nn::kernel::set_target(target);
    } else {
      std::fprintf(stderr, "unknown --kernel-target %s (ignored)\n",
                   kernel_target.c_str());
    }
  }
  opts.trace_path = args.get("trace", "");
  opts.report_path = args.get("report", "");
  opts.metrics = args.has("metrics");
  opts.metrics_out = args.get("metrics-out", "");
  opts.metrics_interval_ms =
      std::atoi(args.get("metrics-interval-ms", "1000").c_str());
  opts.metrics_port = std::atoi(args.get("metrics-port", "-1").c_str());
  opts.profile_path = args.get("profile-out", "");
  if (!opts.trace_path.empty() || !opts.report_path.empty() || opts.metrics ||
      !opts.metrics_out.empty() || opts.metrics_port >= 0 ||
      !opts.profile_path.empty()) {
    obs::set_enabled(true);
  }
  if (!opts.metrics_out.empty() || opts.metrics_port >= 0) {
    util::ExporterOptions eopts;
    eopts.metrics_path = opts.metrics_out;
    eopts.interval_ms = opts.metrics_interval_ms;
    eopts.port = opts.metrics_port;
    opts.exporter = std::make_shared<util::Exporter>(std::move(eopts));
    if (!opts.exporter->start()) opts.exporter.reset();
  }
  const std::string fault_spec = args.get("fault", "");
  if (!fault_spec.empty()) {
    util::fault::arm(fault_spec);
  } else {
    util::fault::arm_from_env();
  }
  return opts;
}

/// Emit the requested artifacts at the end of a bench: the report JSON
/// (with a metrics snapshot attached under "metrics" unless the caller
/// already put one there), the Chrome trace, the span profile, and the
/// metrics table; stops the live exporter so its final record lands
/// before the process exits.
inline void obs_finish(const ObsOptions& opts,
                       obs::Json report = obs::Json::object()) {
  if (opts.exporter != nullptr) opts.exporter->stop();
  if (!opts.report_path.empty()) {
    if (report.find("metrics") == nullptr) {
      report["metrics"] = obs::Registry::instance().snapshot().to_json();
    }
    if (obs::write_json_file(opts.report_path, report)) {
      std::fprintf(stderr, "wrote report to %s\n", opts.report_path.c_str());
    }
  }
  if (!opts.trace_path.empty() && obs::write_trace_file(opts.trace_path)) {
    std::fprintf(stderr, "wrote trace to %s\n", opts.trace_path.c_str());
  }
  if (!opts.profile_path.empty() &&
      obs::write_json_file(opts.profile_path,
                           obs::build_profile().to_json())) {
    std::fprintf(stderr, "wrote profile to %s\n", opts.profile_path.c_str());
  }
  if (opts.metrics) {
    std::fprintf(
        stderr, "%s",
        obs::Registry::instance().snapshot().format_table().c_str());
  }
}

/// Build the worker pool an ExperimentScale asks for (null when serial).
inline std::unique_ptr<util::ThreadPool> make_pool(
    const ExperimentScale& scale) {
  const std::size_t workers = util::resolve_threads(scale.threads);
  if (workers < 2) return nullptr;
  return std::make_unique<util::ThreadPool>(workers);
}

/// Run one baseline. Multi-objective methods (DRiLLS, BOiLS) optimize the
/// weighted objective once; single-objective methods (abcRL, FlowTune) run
/// twice (area-only, delay-only) and report each metric's best, exactly as
/// the paper evaluates them.
inline MethodResult run_baseline_method(const std::string& name,
                                        const aig::Aig& circuit,
                                        const ExperimentScale& scale) {
  auto optimizer = baselines::make_baseline(name);
  const auto pool = make_pool(scale);
  MethodResult result;
  result.method = optimizer->name();
  const bool multi_objective = (name == "drills" || name == "boils");
  if (multi_objective) {
    core::QorEvaluator ev(circuit);
    clo::Rng rng(scale.seed);
    baselines::BaselineParams params;
    params.pool = pool.get();
    params.seq_len = scale.seq_len;
    params.eval_budget = scale.baseline_budget;
    const auto r = optimizer->optimize(ev, params, rng);
    result.area = r.best_qor.area_um2;
    result.delay = r.best_qor.delay_ps;
    result.algorithm_seconds = r.algorithm_seconds;
  } else {
    // Area-only run.
    {
      core::QorEvaluator ev(circuit);
      clo::Rng rng(scale.seed);
      baselines::BaselineParams params;
      params.pool = pool.get();
      params.seq_len = scale.seq_len;
      params.eval_budget = scale.baseline_budget / 2;
      params.weight_area = 1.0;
      params.weight_delay = 0.0;
      const auto r = optimizer->optimize(ev, params, rng);
      result.area = r.best_qor.area_um2;
      result.algorithm_seconds += r.algorithm_seconds;
    }
    // Delay-only run.
    {
      core::QorEvaluator ev(circuit);
      clo::Rng rng(scale.seed + 1);
      baselines::BaselineParams params;
      params.pool = pool.get();
      params.seq_len = scale.seq_len;
      params.eval_budget = scale.baseline_budget / 2;
      params.weight_area = 0.0;
      params.weight_delay = 1.0;
      const auto r = optimizer->optimize(ev, params, rng);
      result.delay = r.best_qor.delay_ps;
      result.algorithm_seconds += r.algorithm_seconds;
    }
  }
  return result;
}

inline core::PipelineConfig pipeline_config_for(const ExperimentScale& scale) {
  core::PipelineConfig cfg;
  cfg.seq_len = scale.seq_len;
  cfg.dataset_size = scale.dataset_size;
  cfg.diffusion_steps = scale.diffusion_steps;
  cfg.diffusion_iters = scale.diffusion_iters;
  cfg.restarts = scale.restarts;
  cfg.surrogate = scale.surrogate;
  cfg.surrogate_train.epochs = scale.surrogate_epochs;
  cfg.optimize.omega = scale.omega;
  cfg.seed = scale.seed;
  cfg.threads = scale.threads;
  cfg.batch = scale.batch;
  return cfg;
}

/// Run the proposed continuous optimization. Returns best area/delay over
/// restarts; algorithm time is the latent-space optimization only
/// (training is one-time and reported separately), matching Fig. 5.
///
/// Restarts are split across objective weightings (balanced via the
/// pipeline, then area-weighted and delay-weighted reruns with the same
/// trained models) and the best sequence per metric is kept — the same
/// best-of-30-repeats protocol the paper evaluates with.
inline MethodResult run_ours(const aig::Aig& circuit,
                             const ExperimentScale& scale,
                             core::PipelineResult* out_result = nullptr,
                             core::EvaluatorStats* out_stats = nullptr) {
  core::QorEvaluator ev(circuit);
  core::CloPipeline pipeline(pipeline_config_for(scale));
  const auto result = pipeline.run(ev);
  MethodResult mr;
  mr.method = "Ours";
  mr.area = result.best.area_um2;
  mr.delay = result.best.delay_ps;
  for (const auto& q : result.restart_qor) {
    mr.area = std::min(mr.area, q.area_um2);
    mr.delay = std::min(mr.delay, q.delay_ps);
  }
  mr.algorithm_seconds = result.optimize_seconds;
  mr.training_seconds = result.dataset_seconds +
                        result.surrogate_train_seconds +
                        result.diffusion_train_seconds;
  // Objective-specialized restarts reusing the already-trained models.
  // The kernel layer fans its tiled GEMMs over the same pool the restarts
  // run on (bitwise-identical at any worker count).
  const auto pool = make_pool(scale);
  nn::kernel::PoolGuard kernel_pool(pool.get());
  clo::Rng rng(scale.seed + 77);
  for (const bool area_run : {true, false}) {
    core::OptimizeParams params;
    params.omega = scale.omega;
    params.weight_area = area_run ? 1.0 : 0.0;
    params.weight_delay = area_run ? 0.0 : 1.0;
    core::ContinuousOptimizer optimizer(*pipeline.surrogate(),
                                        *pipeline.diffusion(),
                                        *pipeline.embedding(), params);
    const auto runs =
        optimizer.run_restarts(rng, scale.restarts, pool.get(), scale.batch);
    std::vector<core::Qor> qors(runs.size());
    util::parallel_for(pool.get(), runs.size(), [&](std::size_t r) {
      qors[r] = ev.evaluate(runs[r].sequence);  // validation, not counted
    });
    for (std::size_t r = 0; r < runs.size(); ++r) {
      mr.algorithm_seconds += runs[r].seconds;
      mr.area = std::min(mr.area, qors[r].area_um2);
      mr.delay = std::min(mr.delay, qors[r].delay_ps);
    }
  }
  if (out_result) *out_result = result;
  if (out_stats) *out_stats = ev.snapshot();
  return mr;
}

/// The quick-mode circuit subset (small enough for seconds-per-method) and
/// the full Table II list behind --full.
inline std::vector<std::string> circuit_selection(bool full) {
  if (full) {
    std::vector<std::string> all;
    for (const auto& info : circuits::benchmark_catalog()) {
      all.push_back(info.name);
    }
    return all;
  }
  return {"ctrl", "int2float", "router", "cavlc", "c17", "c432", "c880"};
}

}  // namespace clo::bench
