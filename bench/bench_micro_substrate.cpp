// Micro-benchmarks of the substrate layers (google-benchmark): AIG
// construction and traversal, cut enumeration, each synthesis pass, the
// technology mapper, and the neural building blocks. These are the pieces
// whose costs determine every number in Figs. 5-6.

#include <benchmark/benchmark.h>

#include "clo/aig/cuts.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/nn/modules.hpp"
#include "clo/opt/passes.hpp"
#include "clo/opt/transform.hpp"
#include "clo/techmap/tech_map.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;

void BM_AigConstruction(benchmark::State& state) {
  for (auto _ : state) {
    aig::Aig g;
    clo::Rng rng(1);
    std::vector<aig::Lit> pool;
    for (int i = 0; i < 16; ++i) pool.push_back(g.add_pi());
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      const aig::Lit a = pool[rng.next_below(pool.size())];
      const aig::Lit b = pool[rng.next_below(pool.size())];
      pool.push_back(aig::lit_notc(g.and_of(a, b), rng.next_bool()));
    }
    benchmark::DoNotOptimize(g.num_ands());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AigConstruction)->Arg(1000)->Arg(10000);

void BM_Simulation64(benchmark::State& state) {
  const aig::Aig g = circuits::make_benchmark("c6288");
  clo::Rng rng(2);
  std::vector<std::uint64_t> words(g.num_pis());
  for (auto& w : words) w = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::simulate_words(g, words));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Simulation64);

void BM_CutEnumeration(benchmark::State& state) {
  const aig::Aig g = circuits::make_benchmark("c5315");
  for (auto _ : state) {
    aig::CutParams params;
    params.max_leaves = static_cast<int>(state.range(0));
    aig::CutSet cuts(g, params);
    benchmark::DoNotOptimize(&cuts);
  }
}
BENCHMARK(BM_CutEnumeration)->Arg(4)->Arg(6);

void BM_Pass(benchmark::State& state, opt::Transform t) {
  for (auto _ : state) {
    state.PauseTiming();
    aig::Aig g = circuits::make_benchmark("c2670");
    state.ResumeTiming();
    opt::apply_transform(g, t);
    benchmark::DoNotOptimize(g.num_ands());
  }
}
BENCHMARK_CAPTURE(BM_Pass, rewrite, opt::Transform::kRw);
BENCHMARK_CAPTURE(BM_Pass, refactor, opt::Transform::kRf);
BENCHMARK_CAPTURE(BM_Pass, resub, opt::Transform::kRs);
BENCHMARK_CAPTURE(BM_Pass, balance, opt::Transform::kB);

void BM_TechMap(benchmark::State& state) {
  const aig::Aig g = circuits::make_benchmark("c5315");
  const auto lib = techmap::CellLibrary::asap7();
  for (auto _ : state) {
    benchmark::DoNotOptimize(techmap::tech_map(g, lib));
  }
}
BENCHMARK(BM_TechMap);

void BM_FullSequenceEval(benchmark::State& state) {
  const auto lib = techmap::CellLibrary::asap7();
  const auto seq = opt::parse_sequence("b;rw;rf;b;rw;rwz;b;rfz;rwz;b");
  for (auto _ : state) {
    aig::Aig g = circuits::make_benchmark("c880");
    opt::run_sequence(g, seq);
    benchmark::DoNotOptimize(techmap::tech_map(g, lib));
  }
}
BENCHMARK(BM_FullSequenceEval);

void BM_LstmForward(benchmark::State& state) {
  clo::Rng rng(3);
  nn::Lstm lstm(8, 32, rng);
  std::vector<nn::Tensor> steps;
  for (int t = 0; t < 20; ++t) {
    steps.push_back(nn::Tensor::randn({16, 8}, rng, 1.0f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.forward(steps));
  }
}
BENCHMARK(BM_LstmForward);

void BM_UNetForward(benchmark::State& state) {
  clo::Rng rng(4);
  models::DiffusionConfig cfg;
  models::DiffusionUNet unet(cfg, rng);
  nn::Tensor x = nn::Tensor::randn({1, cfg.embed_dim, cfg.seq_len}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unet.forward(x, {100}));
  }
}
BENCHMARK(BM_UNetForward);

void BM_DenoiseStepWithGuidance(benchmark::State& state) {
  // One iteration of Eq. 13: denoiser forward + surrogate gradient.
  clo::Rng rng(5);
  models::DiffusionConfig cfg;
  cfg.num_steps = 100;
  models::DiffusionModel model(cfg, rng);
  std::vector<float> x(cfg.seq_len * cfg.embed_dim);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_noise(x, 50));
  }
}
BENCHMARK(BM_DenoiseStepWithGuidance);

}  // namespace

BENCHMARK_MAIN();
