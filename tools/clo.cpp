// The `clo` interactive shell: an ABC-style REPL over the library.
//
//   clo                      interactive session
//   clo -c "gen c432; rw; map"   run ';'-separated commands and exit
//   clo script.clo           run a script file

#include <fstream>
#include <iostream>
#include <sstream>

#include "clo/shell/shell.hpp"

int main(int argc, char** argv) {
  clo::shell::Shell shell;
  if (argc >= 3 && std::string(argv[1]) == "-c") {
    // Split on ';' into individual commands.
    std::stringstream ss(argv[2]);
    std::string cmd;
    int failures = 0;
    while (std::getline(ss, cmd, ';')) {
      if (!shell.execute(cmd, std::cout)) break;
      if (shell.last_failed()) ++failures;
    }
    return failures == 0 ? 0 : 1;
  }
  if (argc >= 2) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    return shell.run_script(f, std::cout) == 0 ? 0 : 1;
  }
  std::cout << "clo — continuous logic optimization shell (try `help`)\n";
  std::string line;
  while (true) {
    std::cout << "clo> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (!shell.execute(line, std::cout)) break;
  }
  return 0;
}
