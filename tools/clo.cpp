// The `clo` interactive shell: an ABC-style REPL over the library.
//
//   clo                      interactive session
//   clo -c "gen c432; rw; map"   run ';'-separated commands and exit
//   clo script.clo           run a script file
//
// Options:
//   --threads N   worker threads for `tune` (default 0 = hardware
//                 concurrency; 1 runs fully serial)
//   --no-batch    use the per-restart optimizer fallback instead of the
//                 batched lockstep path (identical sequences, slower)
//   --no-simd     force the portable scalar nn kernels instead of the
//                 runtime-dispatched SIMD ones (identical results, slower)
//   --trace F     write a Chrome trace-event JSON (chrome://tracing,
//                 Perfetto) of the session to F on exit
//   --report F    write the machine-readable "clo.report.v1" JSON of the
//                 last `tune` run to F
//   --metrics     print the metrics table to stderr on exit
//   --metrics-out F       stream "clo.metrics.v1" JSONL records to F while
//                 the session runs (one snapshot per interval)
//   --metrics-interval-ms N   export period for --metrics-out (default
//                 1000)
//   --metrics-port P      serve the live metrics snapshot as Prometheus
//                 text on http://127.0.0.1:P/ (0 = ephemeral port)
//   --profile-out F       write the "clo.profile.v1" span-derived profile
//                 JSON to F on exit
//   --checkpoint-dir D   persist `tune` phase checkpoints into D
//   --resume      resume `tune` from valid checkpoints in the checkpoint
//                 directory (bit-identical to an uninterrupted run)
//   --verify      prove every sequence `tune` applies equivalent to the
//                 pre-optimization circuit with the SAT-based checker;
//                 verdict and per-check latency land in the report JSON
//   --fault SPEC  arm deterministic fault injection, e.g.
//                 "evaluator.synthesize=2,optimizer.restart=p0.5,seed=7";
//                 "--fault list" prints the registered sites and exits.
//                 The CLO_FAULT environment variable is honored too.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "clo/shell/shell.hpp"
#include "clo/util/fault.hpp"

int main(int argc, char** argv) {
  // `--fault list` is a machine-readable query (CI word-splits the
  // output): handle it before the Shell, logging, or fault arming can
  // write anything, so stdout is exactly one site name per line.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--fault" &&
        std::string(argv[i + 1]) == "list") {
      for (const auto& site : clo::util::fault::known_sites()) {
        std::cout << site << "\n";
      }
      return 0;
    }
  }
  clo::shell::Shell shell;
  shell.set_threads(0);  // hardware concurrency unless overridden
  clo::util::fault::arm_from_env();
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads needs a value\n";
        return 1;
      }
      shell.set_threads(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--no-batch") {
      shell.set_batch(false);
      continue;
    }
    if (arg == "--no-simd") {
      shell.set_simd(false);
      continue;
    }
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "--trace needs a file name\n";
        return 1;
      }
      shell.set_trace_path(argv[++i]);
      continue;
    }
    if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "--report needs a file name\n";
        return 1;
      }
      shell.set_report_path(argv[++i]);
      continue;
    }
    if (arg == "--metrics") {
      shell.set_print_metrics(true);
      continue;
    }
    if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics-out needs a file name\n";
        return 1;
      }
      shell.set_metrics_out(argv[++i]);
      continue;
    }
    if (arg == "--metrics-interval-ms") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics-interval-ms needs a value\n";
        return 1;
      }
      shell.set_metrics_interval_ms(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--metrics-port") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics-port needs a port\n";
        return 1;
      }
      shell.set_metrics_port(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--profile-out") {
      if (i + 1 >= argc) {
        std::cerr << "--profile-out needs a file name\n";
        return 1;
      }
      shell.set_profile_path(argv[++i]);
      continue;
    }
    if (arg == "--checkpoint-dir") {
      if (i + 1 >= argc) {
        std::cerr << "--checkpoint-dir needs a directory\n";
        return 1;
      }
      shell.set_checkpoint_dir(argv[++i]);
      continue;
    }
    if (arg == "--resume") {
      shell.set_resume(true);
      continue;
    }
    if (arg == "--verify") {
      shell.set_verify(true);
      continue;
    }
    if (arg == "--fault") {
      if (i + 1 >= argc) {
        std::cerr << "--fault needs a spec (or 'list')\n";
        return 1;
      }
      const std::string spec = argv[++i];  // "list" was handled up front
      try {
        clo::util::fault::arm(spec);
      } catch (const std::exception& e) {
        std::cerr << "--fault: " << e.what() << "\n";
        return 1;
      }
      continue;
    }
    args.push_back(arg);
  }
  if (args.size() >= 2 && args[0] == "-c") {
    // Split on ';' into individual commands.
    std::stringstream ss(args[1]);
    std::string cmd;
    int failures = 0;
    while (std::getline(ss, cmd, ';')) {
      if (!shell.execute(cmd, std::cout)) break;
      if (shell.last_failed()) ++failures;
    }
    return failures == 0 ? 0 : 1;
  }
  if (!args.empty()) {
    std::ifstream f(args[0]);
    if (!f) {
      std::cerr << "cannot open " << args[0] << "\n";
      return 1;
    }
    return shell.run_script(f, std::cout) == 0 ? 0 : 1;
  }
  std::cout << "clo — continuous logic optimization shell (try `help`)\n";
  std::string line;
  while (true) {
    std::cout << "clo> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (!shell.execute(line, std::cout)) break;
  }
  return 0;
}
