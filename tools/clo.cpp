// The `clo` interactive shell: an ABC-style REPL over the library.
//
//   clo                      interactive session
//   clo -c "gen c432; rw; map"   run ';'-separated commands and exit
//   clo script.clo           run a script file
//   clo serve [flags]        optimization-as-a-service daemon (clo.serve.v1)
//   clo query [flags]        one request against a running daemon
//
// Options:
//   --threads N   worker threads for `tune` (default 0 = hardware
//                 concurrency; 1 runs fully serial)
//   --no-batch    use the per-restart optimizer fallback instead of the
//                 batched lockstep path (identical sequences, slower)
//   --no-simd     force the portable scalar nn kernels instead of the
//                 runtime-dispatched SIMD ones (identical results, slower)
//   --kernel-target T
//                 force a specific nn kernel dispatch target
//                 (scalar|avx2|avx512|auto); unsupported targets clamp
//                 down to the best the host can run (identical results)
//   --trace F     write a Chrome trace-event JSON (chrome://tracing,
//                 Perfetto) of the session to F on exit
//   --report F    write the machine-readable "clo.report.v1" JSON of the
//                 last `tune` run to F
//   --metrics     print the metrics table to stderr on exit
//   --metrics-out F       stream "clo.metrics.v1" JSONL records to F while
//                 the session runs (one snapshot per interval)
//   --metrics-interval-ms N   export period for --metrics-out (default
//                 1000)
//   --metrics-port P      serve the live metrics snapshot as Prometheus
//                 text on http://127.0.0.1:P/ (0 = ephemeral port)
//   --profile-out F       write the "clo.profile.v1" span-derived profile
//                 JSON to F on exit
//   --checkpoint-dir D   persist `tune` phase checkpoints into D
//   --resume      resume `tune` from valid checkpoints in the checkpoint
//                 directory (bit-identical to an uninterrupted run)
//   --verify      prove every sequence `tune` applies equivalent to the
//                 pre-optimization circuit with the SAT-based checker;
//                 verdict and per-check latency land in the report JSON
//   --fault SPEC  arm deterministic fault injection, e.g.
//                 "evaluator.synthesize=2,optimizer.restart=p0.5,seed=7";
//                 "--fault list" prints the registered sites and exits.
//                 The CLO_FAULT environment variable is honored too.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "clo/serve/client.hpp"
#include "clo/serve/protocol.hpp"
#include "clo/serve/server.hpp"
#include "clo/shell/shell.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/obs.hpp"

namespace {

std::atomic<bool> g_signal{false};

void on_signal(int) { g_signal.store(true, std::memory_order_release); }

// `clo serve`: run the optimization daemon until SIGINT/SIGTERM or a
// client's shutdown request.
//   --serve-port P       listen port (default 0 = ephemeral)
//   --registry-dir D     persistent model registry root (default: memory)
//   --max-queue N        waiting connections beyond busy workers (def 32)
//   --sessions N         concurrent session workers (default 2)
//   --threads N          shared pipeline pool (0 = hardware concurrency)
//   --idle-timeout-ms N  close silent clients after N ms (default 5000)
//   --registry-max-entries N  LRU cap on in-memory models (0 = unlimited)
//   --registry-max-mb N       LRU cap on the registry dir (0 = unlimited)
//   --port-file F        write the bound port to F once listening
int run_serve(int argc, char** argv) {
  // Chaos CI arms fault injection on a live daemon via CLO_FAULT; the
  // daemon must survive every armed site (shed/fail the request, never
  // crash).
  clo::util::fault::arm_from_env();
  clo::CliArgs args(argc, argv);
  clo::serve::ServerOptions options;
  options.port = args.get_int("serve-port", 0);
  options.registry_dir = args.get("registry-dir", "");
  options.max_queue = args.get_int("max-queue", 32);
  options.sessions = args.get_int("sessions", 2);
  options.threads = args.get_int("threads", 0);
  options.idle_timeout_ms = args.get_int("idle-timeout-ms", 5000);
  options.registry_max_entries =
      static_cast<std::size_t>(args.get_int("registry-max-entries", 0));
  options.registry_max_mb =
      static_cast<std::size_t>(args.get_int("registry-max-mb", 0));
  clo::serve::Server server(options);
  if (!server.start()) {
    std::cerr << "clo serve: cannot bind 127.0.0.1:" << options.port << "\n";
    return 1;
  }
  const std::string port_file = args.get("port-file", "");
  if (!port_file.empty()) {
    std::ofstream f(port_file);
    f << server.port() << "\n";
  }
  std::cout << "clo serve: listening on 127.0.0.1:" << server.port()
            << std::endl;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Poll instead of Server::wait(): a signal handler cannot safely notify
  // the server's condition variable, so the main thread watches both the
  // signal flag and the protocol-level shutdown request.
  while (!g_signal.load(std::memory_order_acquire) &&
         !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  return 0;
}

// `clo query`: one request to a running daemon, response line on stdout.
//   --port P        daemon port (required)
//   --op OP         tune | qor | status | cancel | shutdown (def status)
//   --circuit C     benchmark name (tune/qor/cancel)
//   --sequence S    "rw;rf;b" for qor (default: registry best)
//   --dataset N / --restarts N / --seed N   pipeline knobs
//   --id TAG        client tag, echoed back (cancel targets it)
//   --target TAG    cancel: id of the in-flight request to stop
//   --deadline-ms N server-side wall-clock budget (0 = unbounded)
//   --retries N     retry busy/transport failures N times with backoff
//   --report        attach the clo.report.v1 JSON to a tune response
//   --json RAW      send RAW verbatim instead of building the request
//   --timeout-ms N  response wait (default 600000 — cold tunes train)
// Exit status: 0 iff the daemon answered with "status": "ok".
int run_query(int argc, char** argv) {
  clo::CliArgs args(argc, argv);
  const int port = args.get_int("port", 0);
  if (port <= 0) {
    std::cerr << "clo query: --port is required\n";
    return 1;
  }
  const std::string raw_json = args.get("json", "");
  if (!raw_json.empty()) {
    // Raw mode stays byte-verbatim (and retry-free): it exists so tests
    // and CI can send arbitrary — including malformed — lines.
    std::string response;
    if (!clo::serve::query_once(port, raw_json, &response,
                                args.get_int("timeout-ms", 600000))) {
      std::cerr << "clo query: no response from 127.0.0.1:" << port << "\n";
      return 1;
    }
    std::cout << response << "\n";
    try {
      const clo::obs::Json doc = clo::obs::Json::parse(response);
      const clo::obs::Json* status = doc.find("status");
      return status != nullptr && status->is_string() &&
                     status->as_string() == "ok"
                 ? 0
                 : 1;
    } catch (const std::exception&) {
      return 1;
    }
  }
  clo::obs::Json req;
  {
    req = clo::obs::Json::object();
    req["op"] = args.get("op", "status");
    const std::string circuit = args.get("circuit", "");
    if (!circuit.empty()) req["circuit"] = circuit;
    const std::string sequence = args.get("sequence", "");
    if (!sequence.empty()) req["sequence"] = sequence;
    const std::string id = args.get("id", "");
    if (!id.empty()) req["id"] = id;
    const std::string target = args.get("target", "");
    if (!target.empty()) req["target"] = target;
    if (args.has("dataset")) req["dataset"] = args.get_int("dataset", 80);
    if (args.has("restarts")) req["restarts"] = args.get_int("restarts", 2);
    if (args.has("seed")) req["seed"] = args.get_int("seed", 1);
    if (args.has("deadline-ms")) {
      req["deadline_ms"] = args.get_int("deadline-ms", 0);
    }
    if (args.has("report")) req["report"] = true;
  }
  clo::serve::RetryPolicy policy;
  policy.retries = args.get_int("retries", 0);
  clo::obs::Json response;
  int attempts = 0;
  if (!clo::serve::query_with_retry(port, req, &response, policy,
                                    args.get_int("timeout-ms", 600000),
                                    &attempts)) {
    std::cerr << "clo query: no response from 127.0.0.1:" << port << " ("
              << attempts << " attempt(s))\n";
    return 1;
  }
  std::cout << response.dump() << "\n";
  const clo::obs::Json* status = response.find("status");
  return status != nullptr && status->is_string() &&
                 status->as_string() == "ok"
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string mode = argv[1];
    if (mode == "serve") return run_serve(argc - 1, argv + 1);
    if (mode == "query") return run_query(argc - 1, argv + 1);
  }
  // `--fault list` is a machine-readable query (CI word-splits the
  // output): handle it before the Shell, logging, or fault arming can
  // write anything, so stdout is exactly one site name per line.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--fault" &&
        std::string(argv[i + 1]) == "list") {
      for (const auto& site : clo::util::fault::known_sites()) {
        std::cout << site << "\n";
      }
      return 0;
    }
  }
  clo::shell::Shell shell;
  shell.set_threads(0);  // hardware concurrency unless overridden
  clo::util::fault::arm_from_env();
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads needs a value\n";
        return 1;
      }
      shell.set_threads(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--no-batch") {
      shell.set_batch(false);
      continue;
    }
    if (arg == "--no-simd") {
      shell.set_simd(false);
      continue;
    }
    if (arg == "--kernel-target") {
      if (i + 1 >= argc) {
        std::cerr << "--kernel-target needs scalar|avx2|avx512|auto\n";
        return 1;
      }
      if (!shell.set_kernel_target(argv[++i])) {
        std::cerr << "unknown kernel target '" << argv[i]
                  << "' (want scalar|avx2|avx512|auto)\n";
        return 1;
      }
      continue;
    }
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "--trace needs a file name\n";
        return 1;
      }
      shell.set_trace_path(argv[++i]);
      continue;
    }
    if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "--report needs a file name\n";
        return 1;
      }
      shell.set_report_path(argv[++i]);
      continue;
    }
    if (arg == "--metrics") {
      shell.set_print_metrics(true);
      continue;
    }
    if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics-out needs a file name\n";
        return 1;
      }
      shell.set_metrics_out(argv[++i]);
      continue;
    }
    if (arg == "--metrics-interval-ms") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics-interval-ms needs a value\n";
        return 1;
      }
      shell.set_metrics_interval_ms(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--metrics-port") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics-port needs a port\n";
        return 1;
      }
      shell.set_metrics_port(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--profile-out") {
      if (i + 1 >= argc) {
        std::cerr << "--profile-out needs a file name\n";
        return 1;
      }
      shell.set_profile_path(argv[++i]);
      continue;
    }
    if (arg == "--checkpoint-dir") {
      if (i + 1 >= argc) {
        std::cerr << "--checkpoint-dir needs a directory\n";
        return 1;
      }
      shell.set_checkpoint_dir(argv[++i]);
      continue;
    }
    if (arg == "--resume") {
      shell.set_resume(true);
      continue;
    }
    if (arg == "--verify") {
      shell.set_verify(true);
      continue;
    }
    if (arg == "--fault") {
      if (i + 1 >= argc) {
        std::cerr << "--fault needs a spec (or 'list')\n";
        return 1;
      }
      const std::string spec = argv[++i];  // "list" was handled up front
      try {
        clo::util::fault::arm(spec);
      } catch (const std::exception& e) {
        std::cerr << "--fault: " << e.what() << "\n";
        return 1;
      }
      continue;
    }
    args.push_back(arg);
  }
  if (args.size() >= 2 && args[0] == "-c") {
    // Split on ';' into individual commands.
    std::stringstream ss(args[1]);
    std::string cmd;
    int failures = 0;
    while (std::getline(ss, cmd, ';')) {
      if (!shell.execute(cmd, std::cout)) break;
      if (shell.last_failed()) ++failures;
    }
    return failures == 0 ? 0 : 1;
  }
  if (!args.empty()) {
    std::ifstream f(args[0]);
    if (!f) {
      std::cerr << "cannot open " << args[0] << "\n";
      return 1;
    }
    return shell.run_script(f, std::cout) == 0 ? 0 : 1;
  }
  std::cout << "clo — continuous logic optimization shell (try `help`)\n";
  std::string line;
  while (true) {
    std::cout << "clo> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (!shell.execute(line, std::cout)) break;
  }
  return 0;
}
