// clo_fuzz — the rewrite-engine fuzzer: random AIGs x random transform
// sequences, every result cross-checked against the original with the
// SAT-based equivalence checker. Failures are shrunk to minimal
// reproducers and dumped as AIGER plus a `clo` replay script. Exit code 0
// iff every seed passed.
//
//   clo_fuzz [--seeds N] [--seed-base B] [--max-pis P] [--max-ands A]
//            [--max-seq-len L] [--conflict-budget C] [--out-dir D]
//
// The default corpus is fixed (seed base 0), so a CI run is reproducible:
// re-running `clo_fuzz --seeds 200` replays the exact same 200 cases.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "clo/aig/io.hpp"
#include "clo/sat/fuzz.hpp"
#include "clo/util/numeric.hpp"

namespace {

struct Args {
  std::uint64_t seeds = 200;
  std::uint64_t seed_base = 0;
  int max_pis = 10;
  int max_ands = 80;
  int max_seq_len = 10;
  std::uint64_t conflict_budget = 200000;
  std::string out_dir = ".";
};

void usage() {
  std::cerr
      << "usage: clo_fuzz [--seeds N] [--seed-base B] [--max-pis P]\n"
         "                [--max-ands A] [--max-seq-len L]\n"
         "                [--conflict-budget C] [--out-dir D]\n";
}

bool write_reproducer(const clo::sat::FuzzFailure& failure,
                      const std::string& out_dir, std::string* aag_path) {
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string stem =
      out_dir + "/repro_seed" + std::to_string(failure.seed);
  *aag_path = stem + ".aag";
  if (!clo::aig::write_aiger_ascii(failure.reproducer, *aag_path)) {
    return false;
  }
  // A clo shell script that replays the failure: load, snapshot, run the
  // shrunk sequence, cec against the snapshot.
  std::ofstream script(stem + ".clo");
  if (!script) return false;
  script << "# reproducer for clo_fuzz seed " << failure.seed << "\n"
         << "# failure: " << failure.kind << " — " << failure.detail << "\n"
         << "read " << *aag_path << "\n"
         << "save\n";
  if (!failure.sequence.empty()) {
    script << "seq " << clo::opt::sequence_to_string(failure.sequence) << "\n";
  }
  script << "cec\n";
  return static_cast<bool>(script);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto parse_u64 = [&](const char* text) {
      std::uint64_t value = 0;
      if (!clo::util::parse_uint64(text, &value)) {
        std::cerr << arg << ": '" << text << "' is not an unsigned integer\n";
        std::exit(2);
      }
      return value;
    };
    if (arg == "--seeds") {
      args.seeds = parse_u64(next("a count"));
    } else if (arg == "--seed-base") {
      args.seed_base = parse_u64(next("a seed"));
    } else if (arg == "--max-pis") {
      args.max_pis = static_cast<int>(parse_u64(next("a count")));
    } else if (arg == "--max-ands") {
      args.max_ands = static_cast<int>(parse_u64(next("a count")));
    } else if (arg == "--max-seq-len") {
      args.max_seq_len = static_cast<int>(parse_u64(next("a length")));
    } else if (arg == "--conflict-budget") {
      args.conflict_budget = parse_u64(next("a conflict count"));
    } else if (arg == "--out-dir") {
      args.out_dir = next("a directory");
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  clo::sat::FuzzOptions options;
  options.max_pis = args.max_pis;
  options.max_ands = args.max_ands;
  options.max_seq_len = args.max_seq_len;
  options.cec.conflict_budget = args.conflict_budget;

  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < args.seeds; ++i) {
    const std::uint64_t seed = args.seed_base + i;
    const auto failure = clo::sat::fuzz_one(seed, options);
    if ((i + 1) % 50 == 0 || i + 1 == args.seeds) {
      std::cerr << "clo_fuzz: " << (i + 1) << "/" << args.seeds
                << " seeds, " << failures << " failure(s)\n";
    }
    if (!failure.has_value()) continue;
    ++failures;
    std::string aag_path;
    const bool wrote =
        write_reproducer(*failure, args.out_dir, &aag_path);
    std::cout << "FAIL seed=" << failure->seed << " kind=" << failure->kind
              << " detail=\"" << failure->detail << "\" sequence=\""
              << clo::opt::sequence_to_string(failure->sequence)
              << "\" reproducer_ands=" << failure->reproducer.num_ands()
              << " reproducer="
              << (wrote ? aag_path : std::string("(write failed)")) << "\n";
  }
  if (failures == 0) {
    std::cout << "OK " << args.seeds << " seeds, 0 failures\n";
    return 0;
  }
  std::cout << "FAILED " << failures << "/" << args.seeds << " seeds\n";
  return 1;
}
