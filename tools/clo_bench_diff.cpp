// clo_bench_diff — the bench regression tracker: compare two BENCH_*.json
// artifacts (clo.bench.kernels.v1 today; any future clo.bench.* schema
// with a results[] array of named timings) and fail when the geometric
// mean of the per-case time ratios regresses past a threshold.
//
//   clo_bench_diff OLD.json NEW.json [--max-regress PCT]
//
// Entries are keyed on (name, threads, target) — records missing either
// field default to threads=1 / target="default" — so a threaded AVX-512
// run is only ever compared against a threaded AVX-512 run of the same
// case, never against a serial or scalar one. For every key present in
// both files the timing is taken from the first of {simd_ns, scalar_ns,
// ns, seconds} each record carries, and the
// ratio new/old is computed (> 1 = slower). The verdict is on the geomean
// of those ratios: exit 1 when it exceeds 1 + PCT/100 (default 10%), exit
// 0 otherwise. Per-case regressions are listed either way so the CI log
// shows *what* moved even when the aggregate gate passes. Cases present
// in only one file are reported and skipped — adding or removing a bench
// must not fail the gate.
//
// CI runs this as a soft gate on the bench-smoke job (absolute
// nanoseconds are noisy across shared runners); the threshold knob is
// documented in README.md.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clo/util/obs.hpp"

namespace {

using clo::obs::Json;

/// Comparison key: only entries matching on case name AND thread count
/// AND dispatch target are diffed against each other. Older artifacts
/// without the threads/target fields key as threads=1 / "default", which
/// keeps pre-threading baselines comparable with new serial runs.
std::string entry_key(const Json& entry, const std::string& name) {
  int threads = 1;
  std::string target = "default";
  const Json* t = entry.find("threads");
  if (t != nullptr && t->is_number()) {
    threads = static_cast<int>(t->as_double());
  }
  const Json* tg = entry.find("target");
  if (tg != nullptr && tg->is_string()) target = tg->as_string();
  return name + " [" + target + ",t" + std::to_string(threads) + "]";
}

/// (name, threads, target) -> representative time for every entry in the
/// file's results[].
std::map<std::string, double> load_times(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  const Json root = Json::parse(ss.str());
  const Json* results = root.find("results");
  if (results == nullptr || !results->is_array()) {
    throw std::runtime_error(path + ": no results[] array");
  }
  std::map<std::string, double> times;
  for (std::size_t i = 0; i < results->size(); ++i) {
    const Json& entry = results->at(i);
    const Json* name = entry.find("name");
    if (name == nullptr || !name->is_string()) continue;
    for (const char* key : {"simd_ns", "scalar_ns", "ns", "seconds"}) {
      const Json* t = entry.find(key);
      if (t != nullptr && t->is_number() && t->as_double() > 0.0) {
        times[entry_key(entry, name->as_string())] = t->as_double();
        break;
      }
    }
  }
  if (times.empty()) {
    throw std::runtime_error(path + ": no timed cases in results[]");
  }
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double max_regress_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regress") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--max-regress needs a percentage\n");
        return 2;
      }
      max_regress_pct = std::atof(argv[++i]);
      continue;
    }
    paths.push_back(arg);
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: clo_bench_diff OLD.json NEW.json "
                 "[--max-regress PCT]\n");
    return 2;
  }

  std::map<std::string, double> old_times, new_times;
  try {
    old_times = load_times(paths[0]);
    new_times = load_times(paths[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clo_bench_diff: %s\n", e.what());
    return 2;
  }

  double log_sum = 0.0;
  int shared = 0;
  std::printf("%-40s %12s %12s %8s\n", "case", "old", "new", "ratio");
  for (const auto& [name, old_t] : old_times) {
    const auto it = new_times.find(name);
    if (it == new_times.end()) {
      std::printf("%-40s %12.4g %12s %8s\n", name.c_str(), old_t, "-",
                  "gone");
      continue;
    }
    const double ratio = it->second / old_t;
    log_sum += std::log(ratio);
    ++shared;
    std::printf("%-40s %12.4g %12.4g %7.3fx%s\n", name.c_str(), old_t,
                it->second, ratio,
                ratio > 1.0 + max_regress_pct / 100.0 ? "  <-- regressed"
                                                      : "");
  }
  for (const auto& [name, new_t] : new_times) {
    if (old_times.find(name) == old_times.end()) {
      std::printf("%-40s %12s %12.4g %8s\n", name.c_str(), "-", new_t,
                  "new");
    }
  }
  if (shared == 0) {
    std::fprintf(stderr, "clo_bench_diff: no shared cases to compare\n");
    return 2;
  }
  const double geomean = std::exp(log_sum / shared);
  const double limit = 1.0 + max_regress_pct / 100.0;
  std::printf("geomean ratio over %d case(s): %.4fx (limit %.4fx)\n", shared,
              geomean, limit);
  if (geomean > limit) {
    std::printf("FAIL: geomean regression %.1f%% exceeds --max-regress "
                "%.1f%%\n",
                (geomean - 1.0) * 100.0, max_regress_pct);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
